//! PageRank by tiled SpMV power iteration.
//!
//! The iteration vector is dense, so each step is a TileSpMV over the
//! tiled structure (`y = d · Pᵀ x + (1-d)/n`), with dangling-vertex mass
//! redistributed uniformly. The tiled format earns its keep here through
//! locality, not skipping — the same storage serves both the sparse- and
//! dense-vector primitives, one of the design points of the tile family.

use std::sync::Arc;
use tsv_baselines::tile_spmv_into;
use tsv_core::tile::{TileConfig, TileMatrix};
use tsv_simt::trace::{self, Tracer};
use tsv_sparse::{CooMatrix, CsrMatrix, SparseError};

/// Options for [`pagerank`].
#[derive(Debug, Clone, Copy)]
pub struct PageRankOptions {
    /// Damping factor (the classic 0.85).
    pub damping: f64,
    /// Stop when the L1 change falls below this.
    pub tolerance: f64,
    /// Iteration cap.
    pub max_iters: usize,
}

impl Default for PageRankOptions {
    fn default() -> Self {
        Self {
            damping: 0.85,
            tolerance: 1e-9,
            max_iters: 200,
        }
    }
}

/// Computes PageRank of the directed graph whose edge `u → v` is entry
/// `(u, v)`. Returns the rank vector (sums to 1) and the iteration count.
pub fn pagerank(
    a: &CsrMatrix<f64>,
    opts: PageRankOptions,
) -> Result<(Vec<f64>, usize), SparseError> {
    pagerank_traced(a, opts, None)
}

/// [`pagerank`] with run telemetry: the transition-matrix build phase and
/// every TileSpMV launch (with its work counters) land on `tracer` when
/// one is attached and enabled.
pub fn pagerank_traced(
    a: &CsrMatrix<f64>,
    opts: PageRankOptions,
    tracer: Option<Arc<Tracer>>,
) -> Result<(Vec<f64>, usize), SparseError> {
    if a.nrows() != a.ncols() {
        return Err(SparseError::NotSquare {
            nrows: a.nrows(),
            ncols: a.ncols(),
        });
    }
    let n = a.nrows();
    if n == 0 {
        return Ok((Vec::new(), 0));
    }
    let tr = tracer.as_deref();

    let t0 = trace::start(tr);
    // Column-stochastic transition matrix Pᵀ in tiled form: entry (v, u) =
    // 1/outdeg(u) for each edge u → v.
    let mut coo = CooMatrix::with_capacity(n, n, a.nnz());
    for (u, v, _) in a.iter() {
        coo.push(v, u, 1.0 / a.row_nnz(u) as f64);
    }
    let pt = TileMatrix::from_csr(&coo.to_csr(), TileConfig::default())?;
    trace::phase(tr, "pagerank/build-pt", t0);
    let dangling: Vec<usize> = (0..n).filter(|&u| a.row_nnz(u) == 0).collect();

    let mut x = vec![1.0 / n as f64; n];
    // One padded product buffer for the whole power iteration; every step
    // writes into it in place instead of allocating a fresh vector.
    let mut y_padded = Vec::new();
    let mut iters = 0;
    while iters < opts.max_iters {
        iters += 1;
        let t0 = trace::start(tr);
        let stats = tile_spmv_into(&pt, &x, &mut y_padded);
        trace::kernel(tr, "spmv/tile", stats, t0);
        // Dangling mass + teleport.
        let lost: f64 = dangling.iter().map(|&u| x[u]).sum();
        let base = (1.0 - opts.damping) / n as f64 + opts.damping * lost / n as f64;
        let mut delta = 0.0;
        for (yi, xi) in y_padded[..n].iter().zip(x.iter_mut()) {
            let next = opts.damping * yi + base;
            delta += (next - *xi).abs();
            *xi = next;
        }
        if delta < opts.tolerance {
            break;
        }
    }
    Ok((x, iters))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsv_sparse::gen::rmat;
    use tsv_sparse::gen::RmatConfig;

    fn directed(n: usize, edges: &[(usize, usize)]) -> CsrMatrix<f64> {
        let mut coo = CooMatrix::new(n, n);
        for &(u, v) in edges {
            coo.push(u, v, 1.0);
        }
        coo.to_csr()
    }

    #[test]
    fn ranks_sum_to_one() {
        let a = directed(5, &[(0, 1), (1, 2), (2, 0), (3, 2), (4, 2)]);
        let (pr, iters) = pagerank(&a, PageRankOptions::default()).unwrap();
        let sum: f64 = pr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        assert!(iters > 1);
    }

    #[test]
    fn sink_of_a_chain_collects_rank() {
        // 0 -> 1 -> 2: rank must increase along the chain.
        let a = directed(3, &[(0, 1), (1, 2)]);
        let (pr, _) = pagerank(&a, PageRankOptions::default()).unwrap();
        assert!(pr[2] > pr[1] && pr[1] > pr[0], "{pr:?}");
    }

    #[test]
    fn symmetric_cycle_is_uniform() {
        let a = directed(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let (pr, _) = pagerank(&a, PageRankOptions::default()).unwrap();
        for &r in &pr {
            assert!((r - 0.25).abs() < 1e-8, "{pr:?}");
        }
    }

    #[test]
    fn dangling_vertices_keep_the_distribution_stochastic() {
        // Vertex 2 has no out-edges.
        let a = directed(3, &[(0, 2), (1, 2)]);
        let (pr, _) = pagerank(&a, PageRankOptions::default()).unwrap();
        assert!((pr.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(pr[2] > pr[0]);
    }

    #[test]
    fn hubs_rank_high_on_powerlaw() {
        let a = rmat(RmatConfig::new(9, 8), 3).to_csr();
        let (pr, _) = pagerank(&a, PageRankOptions::default()).unwrap();
        let best = (0..a.nrows())
            .max_by(|&x, &y| pr[x].total_cmp(&pr[y]))
            .unwrap();
        // In-degree of the top-ranked vertex should be far above average.
        let t = a.transpose();
        let avg = a.nnz() / a.nrows();
        assert!(t.row_nnz(best) > avg, "top vertex in-degree too low");
    }

    #[test]
    fn tolerance_controls_iterations() {
        let a = directed(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let loose = pagerank(
            &a,
            PageRankOptions {
                tolerance: 1e-2,
                ..Default::default()
            },
        )
        .unwrap()
        .1;
        let tight = pagerank(
            &a,
            PageRankOptions {
                tolerance: 1e-12,
                ..Default::default()
            },
        )
        .unwrap()
        .1;
        assert!(tight >= loose);
    }
}
