//! The execution-plan layer: prepared operators plus amortized scratch.
//!
//! The free functions in [`crate::spmspv`] and [`crate::bfs`] are one-shot:
//! every call allocates its padded output, tiled vector, frontier lists and
//! merge buffers, and compacts the result by scanning the whole padded
//! buffer. Iterative workloads (PageRank, SSSP relaxation, betweenness
//! pivots) pay those allocations and the O(n) scan once per iteration.
//!
//! This module hoists the mutable state into reusable workspaces:
//!
//! * [`SpMSpVWorkspace`] + [`spmspv_with_workspace`] — the semiring-generic
//!   numeric driver. The workspace owns the tiled input vector, the padded
//!   output, the contribution buckets and a *touched row-tile* bitset the
//!   kernels mark as they write, so compaction and reset visit only written
//!   tiles (work proportional to `nnz(y)`, not `n`).
//! * [`SpMSpVEngine`] — a prepared [`TileMatrix`] bound to a workspace and
//!   a [`Profiler`], one entry per kernel label, for cumulative per-kernel
//!   breakdowns across iterations.
//! * [`BfsEngine`] — the traversal counterpart, owning a
//!   [`TileBfsGraph`] and a [`BfsWorkspace`].
//! * [`BatchedSpMSpVEngine`] / [`BatchedBfsEngine`] (in [`batched`]) — the
//!   multi-frontier variants: one tile traversal amortized across a
//!   column-blocked batch of query lanes.
//!
//! The one-shot APIs ([`crate::spmspv::tile_spmspv_with`],
//! [`crate::bfs::tile_bfs`]) are thin wrappers over these drivers with a
//! fresh workspace, so both paths execute the same code.

use crate::bfs::{tile_bfs_on_backend, BfsOptions, BfsResult, BfsWorkspace, TileBfsGraph};
use crate::semiring::{PlusTimes, Semiring};
use crate::spmspv::generic::{
    build_col_worklist, build_row_worklist, col_kernel_binned_semiring, col_kernel_semiring,
    coo_kernel_semiring, drain_touched, row_kernel_binned_semiring, row_kernel_semiring,
};
use crate::spmspv::verify;
use crate::spmspv::{
    Balance, DispatchStats, ExecReport, KernelChoice, KernelUsed, SpMSpVOptions, SpvFormat,
};
use crate::tile::{SellSlabs, TileConfig, TileMatrix, TiledVector};
use std::sync::Arc;
use std::time::Instant;
use tsv_simt::analyze::PlanReport;
use tsv_simt::atomic::AtomicWords;
use tsv_simt::backend::{Backend, ExecBackend, ModelBackend};
use tsv_simt::grid::BinPlan;
use tsv_simt::profile::Profiler;
use tsv_simt::sanitize::{self, Sanitizer};
use tsv_simt::stats::KernelStats;
use tsv_simt::trace::{self, Tracer};
use tsv_sparse::{CsrMatrix, SparseError, SparseVector};

pub mod batched;

pub use batched::{
    batched_spmspv_on_backend, BatchExecReport, BatchQueryReport, BatchResult, BatchedBfsEngine,
    BatchedSpMSpVEngine, BatchedSpMSpVWorkspace,
};

/// Process-lifetime instrument handles for the engine layer (see
/// [`tsv_simt::metrics`]): per-phase latency histograms, dispatch-shape
/// distributions, lifecycle counters and workspace high-water gauges.
/// Handles are cached in `LazyLock`s so the registry mutex is touched
/// once per series per process, never on the multiply path; when the
/// registry is disabled, [`emetrics::begin`] skips the clock read and an
/// event costs one branch.
pub(crate) mod emetrics {
    use std::sync::{Arc, LazyLock};
    use std::time::Instant;
    use tsv_simt::metrics::{self, Counter, Gauge, Histogram};

    fn phase(label: &str) -> Arc<Histogram> {
        metrics::global().histogram(&metrics::series("tsv_engine_phase_ns", &[("phase", label)]))
    }

    pub static COMPRESS: LazyLock<Arc<Histogram>> = LazyLock::new(|| phase("spmspv/compress-x"));
    pub static PLAN: LazyLock<Arc<Histogram>> = LazyLock::new(|| phase("spmspv/dispatch-plan"));
    pub static KERNEL_ROW: LazyLock<Arc<Histogram>> =
        LazyLock::new(|| phase("spmspv/row-tile-kernel"));
    pub static KERNEL_COL: LazyLock<Arc<Histogram>> =
        LazyLock::new(|| phase("spmspv/col-tile-kernel"));
    pub static COO: LazyLock<Arc<Histogram>> = LazyLock::new(|| phase("spmspv/coo-pass"));
    pub static COMPACT: LazyLock<Arc<Histogram>> = LazyLock::new(|| phase("spmspv/compact"));
    pub static MULTIPLY: LazyLock<Arc<Histogram>> = LazyLock::new(|| phase("spmspv/multiply"));
    pub static BFS_ITER: LazyLock<Arc<Histogram>> = LazyLock::new(|| phase("bfs/iteration"));

    pub static MULTIPLIES: LazyLock<Arc<Counter>> =
        LazyLock::new(|| metrics::global().counter("tsv_engine_multiplies_total"));
    pub static BATCHED_MULTIPLIES: LazyLock<Arc<Counter>> =
        LazyLock::new(|| metrics::global().counter("tsv_engine_batched_multiplies_total"));
    pub static BFS_RUNS: LazyLock<Arc<Counter>> =
        LazyLock::new(|| metrics::global().counter("tsv_engine_bfs_runs_total"));
    pub static RESETS: LazyLock<Arc<Counter>> =
        LazyLock::new(|| metrics::global().counter("tsv_engine_resets_total"));
    pub static BACKEND_SWITCHES: LazyLock<Arc<Counter>> =
        LazyLock::new(|| metrics::global().counter("tsv_engine_backend_switches_total"));

    pub static WS_SPMSPV: LazyLock<Arc<Gauge>> = LazyLock::new(|| {
        metrics::global().gauge(&metrics::series(
            "tsv_engine_workspace_bytes",
            &[("engine", "spmspv")],
        ))
    });
    pub static WS_BFS: LazyLock<Arc<Gauge>> = LazyLock::new(|| {
        metrics::global().gauge(&metrics::series(
            "tsv_engine_workspace_bytes",
            &[("engine", "bfs")],
        ))
    });
    pub static WS_BATCHED: LazyLock<Arc<Gauge>> = LazyLock::new(|| {
        metrics::global().gauge(&metrics::series(
            "tsv_engine_workspace_bytes",
            &[("engine", "spmspv-batched")],
        ))
    });
    /// Query lanes in the most recent batched launch (SpMSpV batch width
    /// or MS-BFS concurrent-source count).
    pub static BATCH_WIDTH: LazyLock<Arc<Gauge>> =
        LazyLock::new(|| metrics::global().gauge("tsv_engine_batch_width"));

    pub static DISPATCH_PLANS: LazyLock<Arc<Counter>> =
        LazyLock::new(|| metrics::global().counter("tsv_dispatch_plans_total"));
    pub static DISPATCH_WARPS: LazyLock<Arc<Histogram>> =
        LazyLock::new(|| metrics::global().histogram("tsv_dispatch_warps_per_plan"));
    pub static DISPATCH_IMBALANCE: LazyLock<Arc<Histogram>> =
        LazyLock::new(|| metrics::global().histogram("tsv_dispatch_imbalance_pct"));

    /// Timestamp for a phase observation — `None` (no clock read) when
    /// the registry is disabled.
    #[inline]
    pub fn begin(h: &Histogram) -> Option<Instant> {
        h.is_enabled().then(Instant::now)
    }

    /// Completes a phase observation started by [`begin`].
    #[inline]
    pub fn end(h: &Histogram, t0: Option<Instant>) {
        if let Some(t0) = t0 {
            h.observe(t0.elapsed().as_nanos() as u64);
        }
    }
}

/// Cumulative workspace accounting, exposed so callers (and the repro
/// harness) can verify that iterative use is allocation- and scan-stable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineMetrics {
    /// Driver invocations against this workspace.
    pub calls: u64,
    /// Times any scratch buffer was (re)built for a new operand geometry —
    /// 1 after the first call, then stable while the matrix is unchanged.
    pub scratch_reshapes: u64,
    /// Padded-output slots inspected by compaction (the touched-tile scan);
    /// the dense alternative would add `m_tiles * nt` per call.
    pub slots_scanned: u64,
    /// Padded-output slots reset to the semiring zero after compaction.
    pub slots_reset: u64,
}

/// Reusable scratch for [`spmspv_with_workspace`]: the tiled input vector,
/// the padded output, the touched row-tile bitset with its drained list,
/// and the scatter kernels' per-warp contribution buckets.
#[derive(Debug)]
pub struct SpMSpVWorkspace<T = f64> {
    xt: Option<TiledVector<T>>,
    y: Vec<T>,
    touched: AtomicWords,
    touched_list: Vec<u32>,
    contribs: Vec<Vec<(u32, T)>>,
    /// Frontier-compacted unit list of the binned dispatch (row tiles or
    /// vector tiles, ascending).
    worklist: Vec<u32>,
    /// Per-unit binning weights, sized `max(m_tiles, n_tiles)`; all-zero
    /// between calls (reset by iterating `worklist`).
    unit_weights: Vec<u64>,
    /// The warp schedule built over `worklist` (buffers reused call to
    /// call).
    plan: BinPlan,
    /// Compacted-output staging: the driver writes the result's index /
    /// value arrays here, so iterative callers can recycle them instead of
    /// reallocating every multiply.
    out_indices: Vec<u32>,
    out_vals: Vec<T>,
    metrics: EngineMetrics,
    /// The static verifier's report for the most recent dispatch, when
    /// [`SpMSpVOptions::verify`] was set; `None` otherwise.
    last_analysis: Option<PlanReport>,
}

impl<T: Copy + PartialEq + Default + Send + Sync> SpMSpVWorkspace<T> {
    /// An empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        Self {
            xt: None,
            y: Vec::new(),
            touched: AtomicWords::zeroed(0),
            touched_list: Vec::new(),
            contribs: Vec::new(),
            worklist: Vec::new(),
            unit_weights: Vec::new(),
            plan: BinPlan::new(),
            out_indices: Vec::new(),
            out_vals: Vec::new(),
            metrics: EngineMetrics::default(),
            last_analysis: None,
        }
    }

    /// The plan-time verifier's report for the most recent multiply, when
    /// it ran with [`SpMSpVOptions::verify`] set.
    pub fn last_analysis(&self) -> Option<&PlanReport> {
        self.last_analysis.as_ref()
    }

    /// Sizes the buffers for `a`, filling the padded output with `zero`.
    /// Capacities are reserved for the worst case (every tile active /
    /// touched) so no later call can regrow them; the whole prepare is a
    /// no-op once the geometry matches.
    fn prepare(&mut self, a: &TileMatrix<T>, zero: T) {
        let nt = a.nt();
        let padded = a.m_tiles() * nt;
        let words = a.m_tiles().div_ceil(64);
        let mut reshaped = false;
        if self.y.len() != padded {
            self.y.clear();
            self.y.resize(padded, zero);
            reshaped = true;
        }
        if self.touched.len() != words {
            self.touched = AtomicWords::zeroed(words);
            reshaped = true;
        }
        if self.touched_list.capacity() < a.m_tiles() {
            let additional = a.m_tiles() - self.touched_list.len();
            self.touched_list.reserve(additional);
            reshaped = true;
        }
        let units = a.m_tiles().max(a.n_tiles());
        if self.unit_weights.len() != units {
            self.unit_weights.clear();
            self.unit_weights.resize(units, 0);
            reshaped = true;
        }
        if self.worklist.capacity() < units {
            let additional = units - self.worklist.len();
            self.worklist.reserve(additional);
            reshaped = true;
        }
        let xt_fits = self
            .xt
            .as_ref()
            .is_some_and(|xt| xt.len() == a.ncols() && xt.nt() == nt);
        if !xt_fits {
            let mut xt = TiledVector::zeros(a.ncols(), nt);
            xt.reserve_full();
            self.xt = Some(xt);
            reshaped = true;
        }
        if reshaped {
            self.metrics.scratch_reshapes += 1;
            emetrics::WS_SPMSPV.set(self.approx_bytes() as f64);
        }
    }

    /// Approximate resident scratch bytes (capacities, not lengths) — the
    /// quantity behind the `tsv_engine_workspace_bytes{engine="spmspv"}`
    /// high-water gauge. Updated on every reshape, which is when the
    /// footprint can change.
    pub fn approx_bytes(&self) -> u64 {
        let t = std::mem::size_of::<T>() as u64;
        let mut b = self.y.capacity() as u64 * t
            + self.touched.len() as u64 * 8
            + self.touched_list.capacity() as u64 * 4
            + self.worklist.capacity() as u64 * 4
            + self.unit_weights.capacity() as u64 * 8
            + self.out_indices.capacity() as u64 * 4
            + self.out_vals.capacity() as u64 * t;
        if let Some(xt) = &self.xt {
            b += xt.payload_fingerprint().1 as u64 * t;
        }
        for c in &self.contribs {
            b += c.capacity() as u64 * (4 + t);
        }
        b
    }

    /// The cumulative accounting for this workspace.
    pub fn metrics(&self) -> EngineMetrics {
        self.metrics
    }

    /// Zeroes the accounting without touching the buffers: a fresh
    /// measurement window over warm scratch.
    pub fn reset_metrics(&mut self) {
        self.metrics = EngineMetrics::default();
    }

    /// `(pointer, capacity)` pairs of the owned scratch buffers, for
    /// asserting that steady-state reuse neither moves nor regrows them.
    pub fn scratch_fingerprint(&self) -> Vec<(usize, usize)> {
        let mut f = vec![(self.y.as_ptr() as usize, self.y.capacity())];
        if let Some(xt) = &self.xt {
            f.push(xt.payload_fingerprint());
        }
        f.push((
            self.touched_list.as_ptr() as usize,
            self.touched_list.capacity(),
        ));
        f.push((self.worklist.as_ptr() as usize, self.worklist.capacity()));
        f.push((
            self.unit_weights.as_ptr() as usize,
            self.unit_weights.capacity(),
        ));
        f
    }

    /// `(pointer, capacity)` pairs of the compacted-output staging buffers.
    /// Under [`SpMSpVEngine::multiply_into`] these ping-pong with the
    /// caller's vector: across calls the pointers alternate between (at
    /// most) two stable allocations instead of being reallocated each time.
    pub fn output_fingerprint(&self) -> [(usize, usize); 2] {
        [
            (
                self.out_indices.as_ptr() as usize,
                self.out_indices.capacity(),
            ),
            (self.out_vals.as_ptr() as usize, self.out_vals.capacity()),
        ]
    }
}

impl<T: Copy + PartialEq + Default + Send + Sync> Default for SpMSpVWorkspace<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// `y = A ⊕.⊗ x` over an arbitrary semiring, reusing `ws` for every
/// intermediate buffer.
///
/// This is the driver behind both [`crate::spmspv::tile_spmspv_with`]
/// (which passes a fresh workspace and `PlusTimes`) and
/// [`SpMSpVEngine::multiply`]. Kernel selection follows
/// [`SpMSpVOptions`] unchanged; after the tile kernel and the side-COO
/// pass, the result is compacted by scanning only the row tiles the
/// kernels marked as written.
///
/// # Panics
///
/// When `S::zero()` differs from `S::T::default()` (e.g. MinPlus, whose
/// zero is `+∞`) and `a` stores dense tiles: dense payloads pad missing
/// entries with `T::default()`, which such algebras would read as real
/// values. Build the matrix with `dense_threshold > 1.0` (see
/// [`SpMSpVEngine::from_csr`], which does this automatically).
pub fn spmspv_with_workspace<S: Semiring>(
    a: &TileMatrix<S::T>,
    x: &SparseVector<S::T>,
    opts: SpMSpVOptions,
    ws: &mut SpMSpVWorkspace<S::T>,
) -> Result<(SparseVector<S::T>, ExecReport), SparseError>
where
    S::T: Default,
{
    spmspv_traced::<S>(a, x, opts, ws, None)
}

/// [`spmspv_with_workspace`] with telemetry: the internal phases (input
/// compression, dispatch planning, the tile kernel, the hybrid COO pass,
/// compaction) are recorded on `tracer` as `"phase"` spans. With `None`,
/// each phase boundary costs one branch.
pub fn spmspv_traced<S: Semiring>(
    a: &TileMatrix<S::T>,
    x: &SparseVector<S::T>,
    opts: SpMSpVOptions,
    ws: &mut SpMSpVWorkspace<S::T>,
    tracer: Option<&Tracer>,
) -> Result<(SparseVector<S::T>, ExecReport), SparseError>
where
    S::T: Default,
{
    spmspv_sanitized::<S>(a, x, opts, ws, tracer, None)
}

/// [`spmspv_traced`] with race detection: every kernel launch runs inside a
/// sanitizer epoch (`begin`/`barrier`), so the shadow-access log is analyzed
/// per launch and conflicts are attributed to the kernel that made them.
/// With `None`, each global access costs one branch — the same contract as
/// the trace gate.
pub fn spmspv_sanitized<S: Semiring>(
    a: &TileMatrix<S::T>,
    x: &SparseVector<S::T>,
    opts: SpMSpVOptions,
    ws: &mut SpMSpVWorkspace<S::T>,
    tracer: Option<&Tracer>,
    san: Option<&Sanitizer>,
) -> Result<(SparseVector<S::T>, ExecReport), SparseError>
where
    S::T: Default,
{
    let sell = build_sell_slabs::<S>(a, opts.format);
    spmspv_on_backend::<S, _>(&ModelBackend, a, x, opts, ws, sell.as_ref(), tracer, san)
}

/// Builds the SELL-C-σ slab sidecar for `a` when `format` requests it (and
/// records the resulting padding ratio on the metrics registry). One-shot
/// drivers call this per multiply; [`SpMSpVEngine`] builds once at
/// construction and reuses the slabs across calls.
pub fn build_sell_slabs<S: Semiring>(
    a: &TileMatrix<S::T>,
    format: SpvFormat,
) -> Option<SellSlabs<S::T>>
where
    S::T: Default,
{
    match format {
        SpvFormat::TileCsr => None,
        SpvFormat::Sell(cfg) => {
            let slabs = SellSlabs::build(a, cfg);
            tsv_simt::metrics::format_metrics()
                .sell_padding_ratio
                .set(slabs.stats().padding_ratio());
            Some(slabs)
        }
    }
}

/// [`spmspv_sanitized`] over an explicit execution [`Backend`]: the tile
/// kernel, the binned dispatch and the hybrid COO pass all launch on
/// `backend` instead of the default modeled SIMT grid. Kernel selection,
/// dispatch planning and the deterministic merge are backend-independent,
/// so `PlusTimes` results are bit-identical across backends.
#[allow(clippy::too_many_arguments)]
pub fn spmspv_on_backend<S: Semiring, B: Backend>(
    backend: &B,
    a: &TileMatrix<S::T>,
    x: &SparseVector<S::T>,
    opts: SpMSpVOptions,
    ws: &mut SpMSpVWorkspace<S::T>,
    sell: Option<&SellSlabs<S::T>>,
    tracer: Option<&Tracer>,
    san: Option<&Sanitizer>,
) -> Result<(SparseVector<S::T>, ExecReport), SparseError>
where
    S::T: Default,
{
    let report = spmspv_into_ws::<S, _>(backend, a, x, opts, ws, sell, tracer, san)?;
    let y = SparseVector::from_parts(
        a.nrows(),
        std::mem::take(&mut ws.out_indices),
        std::mem::take(&mut ws.out_vals),
    )
    .expect("touched-tile order yields sorted unique indices");
    Ok((y, report))
}

/// The workspace-resident driver: runs the full pipeline and leaves the
/// compacted result in `ws.out_indices` / `ws.out_vals`. Callers either
/// take the buffers ([`spmspv_traced`]) or swap them with a recycled
/// vector's ([`SpMSpVEngine::multiply_into`]).
#[allow(clippy::too_many_arguments)]
fn spmspv_into_ws<S: Semiring, B: Backend>(
    backend: &B,
    a: &TileMatrix<S::T>,
    x: &SparseVector<S::T>,
    opts: SpMSpVOptions,
    ws: &mut SpMSpVWorkspace<S::T>,
    sell: Option<&SellSlabs<S::T>>,
    tracer: Option<&Tracer>,
    san: Option<&Sanitizer>,
) -> Result<ExecReport, SparseError>
where
    S::T: Default,
{
    // The slab sidecar only applies when the options ask for it — an
    // engine whose format knob was flipped back to tile-CSR keeps its
    // cached slabs but stops routing through them.
    let sell = match opts.format {
        SpvFormat::Sell(_) => sell,
        SpvFormat::TileCsr => None,
    };
    match opts.format {
        SpvFormat::TileCsr => tsv_simt::metrics::format_metrics().launches_tilecsr.inc(),
        SpvFormat::Sell(_) => tsv_simt::metrics::format_metrics().launches_sell.inc(),
    }
    if a.ncols() != x.len() {
        return Err(SparseError::DimensionMismatch {
            op: "tile_spmspv",
            expected: a.ncols(),
            found: x.len(),
        });
    }
    assert!(
        S::zero() == S::T::default() || a.dense_tiles() == 0,
        "semiring zero differs from the structural default value; \
         build the matrix with dense tiles disabled (dense_threshold > 1.0)"
    );
    ws.prepare(a, S::zero());
    let SpMSpVWorkspace {
        xt,
        y,
        touched,
        touched_list,
        contribs,
        worklist,
        unit_weights,
        plan,
        out_indices,
        out_vals,
        metrics,
        last_analysis,
    } = ws;
    *last_analysis = None;
    let xt = xt.as_mut().expect("workspace prepared");
    let t_compress = trace::start(tracer);
    let m_compress = emetrics::begin(&emetrics::COMPRESS);
    xt.refill(x, S::zero());
    emetrics::end(&emetrics::COMPRESS, m_compress);
    trace::phase(tracer, "spmspv/compress-x", t_compress);

    let kernel = match opts.kernel {
        KernelChoice::RowTile => KernelUsed::RowTile,
        KernelChoice::ColTile => KernelUsed::ColTile,
        KernelChoice::Auto => {
            // The compacted row kernel's work scales with *active tiles*,
            // so under Binned the CSC rule compares tile occupancy, not
            // element sparsity, against the threshold.
            let very_sparse = match opts.balance {
                Balance::OneWarpPerRowTile => x.sparsity() < opts.csc_threshold,
                Balance::Binned { .. } => xt.tile_occupancy() < opts.csc_threshold,
            };
            if very_sparse {
                KernelUsed::ColTile
            } else {
                KernelUsed::RowTile
            }
        }
    };

    // Whether the hybrid COO pass will run this multiply — a pure function
    // of the operands, needed up front so the static verifier can cover
    // the full phase (tile launch + COO pass) before anything executes.
    let coo_active = a.extra().nnz() > 0 && x.nnz() > 0;

    // Plan-time verification of the *direct* shapes happens here, before
    // the launch; the binned shapes verify inside their dispatch arm, right
    // after planning builds the work list and BinPlan (still pre-launch).
    if opts.verify && opts.balance == Balance::OneWarpPerRowTile {
        let launch = match kernel {
            KernelUsed::RowTile => {
                verify::row_direct_launch(a.m_tiles(), a.nt(), a.n_tiles(), touched.len())
                    .map_err(verify::plan_error)?
            }
            KernelUsed::ColTile => verify::col_direct_launch(xt.active_tiles(), a.n_tiles()),
        };
        let mut launches = vec![launch];
        if coo_active {
            launches.push(verify::coo_launch(x.nnz(), x.len()));
        }
        *last_analysis = Some(verify::run(&verify::plan_label(kernel, &opts), &launches));
    }

    let t_kernel = trace::start(tracer);
    let m_kernel = emetrics::begin(match kernel {
        KernelUsed::RowTile => &emetrics::KERNEL_ROW,
        KernelUsed::ColTile => &emetrics::KERNEL_COL,
    });
    // One sanitizer epoch per kernel launch: the tile kernel's shadow
    // accesses are analyzed at its barrier, before the COO pass opens a
    // fresh epoch — a plain store here and an atomic merge there never
    // alias across launches.
    sanitize::begin(
        san,
        match (kernel, opts.balance) {
            (KernelUsed::RowTile, Balance::OneWarpPerRowTile) => "spmspv/row-tile",
            (KernelUsed::ColTile, Balance::OneWarpPerRowTile) => "spmspv/col-tile",
            (KernelUsed::RowTile, Balance::Binned { .. }) => "spmspv/row-tile-binned",
            (KernelUsed::ColTile, Balance::Binned { .. }) => "spmspv/col-tile-binned",
        },
        a.nt(),
    );
    let mut dispatch = None;
    let mut stats = match (kernel, opts.balance) {
        (KernelUsed::RowTile, Balance::OneWarpPerRowTile) => {
            row_kernel_semiring::<S, _>(backend, a, xt, y, sell, touched, san)
        }
        (KernelUsed::ColTile, Balance::OneWarpPerRowTile) => {
            col_kernel_semiring::<S, _>(backend, a, xt, y, sell, contribs, touched, san)
        }
        (
            kernel,
            Balance::Binned {
                target_nnz,
                max_split,
            },
        ) => {
            // Dispatch planning: compact the frontier into a unit work
            // list, then bin it into warps. Its traffic is device work and
            // is charged into the kernel's stats.
            let t_plan = trace::start(tracer);
            let m_plan = emetrics::begin(&emetrics::PLAN);
            let mut plan_stats = KernelStats::default();
            match kernel {
                KernelUsed::RowTile => {
                    build_row_worklist(a, xt, worklist, unit_weights, &mut plan_stats);
                }
                KernelUsed::ColTile => {
                    build_col_worklist(a, xt, worklist, unit_weights, &mut plan_stats);
                }
            }
            plan.rebuild(
                worklist,
                |u| unit_weights[u as usize],
                u64::from(target_nnz).max(1),
                max_split.max(1),
            );
            for &u in worklist.iter() {
                unit_weights[u as usize] = 0;
            }
            let stats = DispatchStats::from_plan(plan, worklist.len());
            dispatch = Some(stats);
            emetrics::end(&emetrics::PLAN, m_plan);
            let info = stats.to_trace_info();
            emetrics::DISPATCH_PLANS.inc();
            emetrics::DISPATCH_WARPS.observe(u64::from(info.warps));
            emetrics::DISPATCH_IMBALANCE.observe((info.imbalance() * 100.0) as u64);
            trace::dispatch(tracer, "spmspv/dispatch-plan", info, t_plan);
            // The work list and BinPlan now exist but nothing has
            // launched: verify the binned shape (in-place fast path or
            // buffered scatter with part-order merge) plus the COO pass.
            if opts.verify {
                let fast =
                    plan.n_warps() == worklist.len() && plan.n_assignments() == worklist.len();
                let launch = match kernel {
                    KernelUsed::RowTile if fast => verify::row_binned_fast_launch(
                        a.m_tiles(),
                        a.nt(),
                        a.n_tiles(),
                        touched.len(),
                        worklist,
                    )
                    .map_err(verify::plan_error)?,
                    KernelUsed::RowTile => verify::binned_buffered_launch(
                        "spmspv/row-tile-binned",
                        plan,
                        worklist,
                        a.n_tiles(),
                    ),
                    KernelUsed::ColTile => verify::binned_buffered_launch(
                        "spmspv/col-tile-binned",
                        plan,
                        worklist,
                        a.n_tiles(),
                    ),
                };
                let mut launches = vec![launch];
                if coo_active {
                    launches.push(verify::coo_launch(x.nnz(), x.len()));
                }
                *last_analysis = Some(verify::run(&verify::plan_label(kernel, &opts), &launches));
            }
            plan_stats
                + match kernel {
                    KernelUsed::RowTile => row_kernel_binned_semiring::<S, _>(
                        backend, a, xt, y, sell, worklist, plan, contribs, touched, san,
                    ),
                    KernelUsed::ColTile => col_kernel_binned_semiring::<S, _>(
                        backend, a, xt, y, sell, plan, contribs, touched, san,
                    ),
                }
        }
    };
    sanitize::barrier(san);
    emetrics::end(
        match kernel {
            KernelUsed::RowTile => &emetrics::KERNEL_ROW,
            KernelUsed::ColTile => &emetrics::KERNEL_COL,
        },
        m_kernel,
    );
    trace::phase(
        tracer,
        match kernel {
            KernelUsed::RowTile => "spmspv/row-tile-kernel",
            KernelUsed::ColTile => "spmspv/col-tile-kernel",
        },
        t_kernel,
    );
    // Hybrid pass over the extracted very-sparse entries, driven by x's
    // nonzeros so untouched columns cost nothing. The kernel records no
    // shadow accesses when inactive, so the epoch is opened only when it
    // will actually run.
    let t_coo = trace::start(tracer);
    let m_coo = if coo_active {
        emetrics::begin(&emetrics::COO)
    } else {
        None
    };
    if coo_active {
        sanitize::begin(san, "spmspv/coo-pass", a.nt());
    }
    stats += coo_kernel_semiring::<S, _>(backend, a, x, y, contribs, touched, san);
    if coo_active {
        sanitize::barrier(san);
        emetrics::end(&emetrics::COO, m_coo);
        trace::phase(tracer, "spmspv/coo-pass", t_coo);
    }

    // Compact and reset only the row tiles the kernels wrote, staging the
    // result in the workspace's recyclable output buffers.
    let t_compact = trace::start(tracer);
    let m_compact = emetrics::begin(&emetrics::COMPACT);
    drain_touched(touched, touched_list);
    let nt = a.nt();
    let n = a.nrows();
    let zero = S::zero();
    out_indices.clear();
    out_vals.clear();
    for &rt in touched_list.iter() {
        let base = rt as usize * nt;
        let end = (base + nt).min(n);
        for (i, v) in y[base..end].iter().enumerate() {
            if *v != zero {
                out_indices.push((base + i) as u32);
                out_vals.push(*v);
            }
        }
        metrics.slots_scanned += (end - base) as u64;
        y[base..base + nt].fill(zero);
        metrics.slots_reset += nt as u64;
    }
    metrics.calls += 1;
    emetrics::end(&emetrics::COMPACT, m_compact);
    trace::phase(tracer, "spmspv/compact", t_compact);

    Ok(ExecReport {
        kernel,
        stats,
        dispatch,
        format: opts.format,
        sell: sell.map(|s| *s.stats()),
    })
}

/// A prepared SpMSpV operator: a [`TileMatrix`] bound to a reusable
/// [`SpMSpVWorkspace`] and a cumulative per-kernel [`Profiler`].
///
/// ```
/// use tsv_core::exec::SpMSpVEngine;
/// use tsv_core::semiring::PlusTimes;
/// use tsv_core::tile::TileConfig;
///
/// let a = tsv_sparse::gen::banded(200, 4, 0.9, 7).to_csr();
/// let mut engine = SpMSpVEngine::<PlusTimes>::from_csr(&a, TileConfig::default()).unwrap();
/// let x = tsv_sparse::gen::random_sparse_vector(200, 0.05, 1);
/// let (y, _) = engine.multiply(&x).unwrap();
/// let (y2, _) = engine.multiply(&x).unwrap();
/// assert_eq!(y, y2);
/// assert_eq!(engine.metrics().calls, 2);
/// ```
pub struct SpMSpVEngine<S: Semiring = PlusTimes> {
    a: TileMatrix<S::T>,
    opts: SpMSpVOptions,
    ws: SpMSpVWorkspace<S::T>,
    /// SELL-C-σ slab sidecar, built once at construction when the options
    /// select [`SpvFormat::Sell`] and reused across multiplies. Owned by
    /// the engine (not the workspace) because a workspace can be reused
    /// with a different matrix of identical geometry, which would silently
    /// alias stale baked values.
    sell: Option<SellSlabs<S::T>>,
    profiler: Profiler,
    tracer: Option<Arc<Tracer>>,
    sanitizer: Option<Arc<Sanitizer>>,
    backend: ExecBackend,
}

impl<S: Semiring> SpMSpVEngine<S>
where
    S::T: Default,
{
    /// Wraps an already-tiled matrix with default options.
    pub fn new(a: TileMatrix<S::T>) -> Self {
        Self::with_options(a, SpMSpVOptions::default())
    }

    /// Wraps an already-tiled matrix; scratch is sized eagerly so the first
    /// `multiply` is as allocation-stable as the rest.
    pub fn with_options(a: TileMatrix<S::T>, opts: SpMSpVOptions) -> Self {
        let mut ws = SpMSpVWorkspace::new();
        ws.prepare(&a, S::zero());
        let sell = build_sell_slabs::<S>(&a, opts.format);
        Self {
            a,
            opts,
            ws,
            sell,
            profiler: Profiler::new(),
            tracer: None,
            sanitizer: None,
            backend: ExecBackend::default(),
        }
    }

    /// The SELL slab construction stats, when the engine was built with
    /// [`SpvFormat::Sell`].
    pub fn sell_stats(&self) -> Option<crate::tile::SellStats> {
        self.sell.as_ref().map(|s| *s.stats())
    }

    /// Tiles `a` and wraps it. When the semiring's zero differs from the
    /// structural default (MinPlus: `+∞` vs `0.0`), dense tiles are
    /// disabled automatically — their padding would otherwise be read as
    /// real values.
    pub fn from_csr(a: &CsrMatrix<S::T>, mut config: TileConfig) -> Result<Self, SparseError> {
        if S::zero() != S::T::default() {
            config.dense_threshold = 2.0;
        }
        Ok(Self::new(TileMatrix::from_csr(a, config)?))
    }

    /// [`Self::from_csr`] with explicit kernel-selection options (the same
    /// dense-tile safety rule applies).
    pub fn from_csr_with(
        a: &CsrMatrix<S::T>,
        mut config: TileConfig,
        opts: SpMSpVOptions,
    ) -> Result<Self, SparseError> {
        if S::zero() != S::T::default() {
            config.dense_threshold = 2.0;
        }
        Ok(Self::with_options(TileMatrix::from_csr(a, config)?, opts))
    }

    /// [`Self::from_csr`] with telemetry: the tiling pass is recorded as a
    /// `"spmspv/tiling"` phase span and the tracer is attached to the
    /// engine, so every later `multiply` records a kernel event.
    pub fn from_csr_traced(
        a: &CsrMatrix<S::T>,
        config: TileConfig,
        tracer: Option<Arc<Tracer>>,
    ) -> Result<Self, SparseError> {
        let t0 = trace::start(tracer.as_deref());
        let mut engine = Self::from_csr(a, config)?;
        trace::phase(tracer.as_deref(), "spmspv/tiling", t0);
        engine.tracer = tracer;
        Ok(engine)
    }

    /// Attaches (or detaches) a shared tracer. Every `multiply` then
    /// records one `"kernel"` event plus its internal phase spans.
    pub fn set_tracer(&mut self, tracer: Option<Arc<Tracer>>) {
        self.tracer = tracer;
    }

    /// The attached tracer, if any.
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.tracer.as_ref()
    }

    /// Attaches (or detaches) a shared race sanitizer. Every later
    /// `multiply` then runs each kernel launch inside a sanitizer epoch;
    /// accumulated violations stay on the `Sanitizer` for the caller to
    /// inspect. With `None` (the default) each global access costs one
    /// branch, exactly like the trace gate.
    pub fn set_sanitizer(&mut self, sanitizer: Option<Arc<Sanitizer>>) {
        self.sanitizer = sanitizer;
    }

    /// The attached sanitizer, if any.
    pub fn sanitizer(&self) -> Option<&Arc<Sanitizer>> {
        self.sanitizer.as_ref()
    }

    /// Selects the execution substrate for every later `multiply`. The
    /// default is the modeled SIMT grid; [`ExecBackend::native`] runs the
    /// same tile kernels as real parallel code. The sanitizer is
    /// model-only: attaching one while a native backend is selected is the
    /// caller's error (the CLI rejects the combination up front).
    pub fn set_backend(&mut self, backend: ExecBackend) {
        emetrics::BACKEND_SWITCHES.inc();
        self.backend = backend;
    }

    /// The selected execution backend.
    pub fn backend(&self) -> &ExecBackend {
        &self.backend
    }

    /// Starts a fresh measurement window: clears the profiler and zeroes
    /// the workspace accounting. The prepared matrix, the warm scratch and
    /// any attached tracer are kept, so measurement restarts without
    /// rebuild or reallocation. The process-lifetime metrics registry
    /// (`tsv_simt::metrics`) is deliberately *not* cleared — it
    /// accumulates across resets.
    pub fn reset(&mut self) {
        emetrics::RESETS.inc();
        self.profiler.clear();
        self.ws.reset_metrics();
    }

    /// `y = A ⊕.⊗ x`, recording the launch under `spmspv/<kernel>` in the
    /// engine's profiler (and on the attached tracer, when present).
    pub fn multiply(
        &mut self,
        x: &SparseVector<S::T>,
    ) -> Result<(SparseVector<S::T>, ExecReport), SparseError> {
        let tracer = self.tracer.as_deref();
        let t0 = trace::start(tracer);
        let start = Instant::now();
        let (y, report) = spmspv_on_backend::<S, _>(
            &self.backend,
            &self.a,
            x,
            self.opts,
            &mut self.ws,
            self.sell.as_ref(),
            tracer,
            self.sanitizer.as_deref(),
        )?;
        let wall = start.elapsed();
        trace::kernel(tracer, report.kernel.trace_label(), report.stats, t0);
        self.profiler
            .record(report.kernel.trace_label(), report.stats, wall);
        emetrics::MULTIPLIES.inc();
        emetrics::MULTIPLY.observe(wall.as_nanos() as u64);
        Ok((y, report))
    }

    /// [`Self::multiply`] into a caller-owned vector, recycling its
    /// buffers: the result replaces `y`'s contents and `y`'s previous
    /// index/value allocations become the workspace's next compaction
    /// staging. An iterative caller that feeds each round's output back in
    /// (directly or after rebuilding a frontier from it) ping-pongs between
    /// two stable allocations instead of reallocating every call.
    pub fn multiply_into(
        &mut self,
        x: &SparseVector<S::T>,
        y: &mut SparseVector<S::T>,
    ) -> Result<ExecReport, SparseError> {
        let tracer = self.tracer.as_deref();
        let t0 = trace::start(tracer);
        let start = Instant::now();
        let report = spmspv_into_ws::<S, _>(
            &self.backend,
            &self.a,
            x,
            self.opts,
            &mut self.ws,
            self.sell.as_ref(),
            tracer,
            self.sanitizer.as_deref(),
        )?;
        let wall = start.elapsed();
        trace::kernel(tracer, report.kernel.trace_label(), report.stats, t0);
        self.profiler
            .record(report.kernel.trace_label(), report.stats, wall);
        emetrics::MULTIPLIES.inc();
        emetrics::MULTIPLY.observe(wall.as_nanos() as u64);
        let (old_i, old_v) = y
            .replace_parts(
                self.a.nrows(),
                std::mem::take(&mut self.ws.out_indices),
                std::mem::take(&mut self.ws.out_vals),
            )
            .expect("touched-tile order yields sorted unique indices");
        self.ws.out_indices = old_i;
        self.ws.out_indices.clear();
        self.ws.out_vals = old_v;
        self.ws.out_vals.clear();
        Ok(report)
    }

    /// `(pointer, capacity)` pairs of the compacted-output staging buffers
    /// — see [`SpMSpVWorkspace::output_fingerprint`].
    pub fn output_fingerprint(&self) -> [(usize, usize); 2] {
        self.ws.output_fingerprint()
    }

    /// The prepared matrix.
    pub fn matrix(&self) -> &TileMatrix<S::T> {
        &self.a
    }

    /// The kernel-selection options.
    pub fn options(&self) -> SpMSpVOptions {
        self.opts
    }

    /// Cumulative workspace accounting.
    pub fn metrics(&self) -> EngineMetrics {
        self.ws.metrics()
    }

    /// The plan-time static verifier's report for the most recent
    /// multiply — present when the engine's options set
    /// [`SpMSpVOptions::verify`], `None` otherwise.
    pub fn last_analysis(&self) -> Option<&PlanReport> {
        self.ws.last_analysis()
    }

    /// The cumulative per-kernel breakdown.
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// `(pointer, capacity)` pairs of the workspace buffers — see
    /// [`SpMSpVWorkspace::scratch_fingerprint`].
    pub fn scratch_fingerprint(&self) -> Vec<(usize, usize)> {
        self.ws.scratch_fingerprint()
    }
}

/// A prepared traversal operator: a [`TileBfsGraph`] bound to a reusable
/// [`BfsWorkspace`] and a cumulative per-kernel [`Profiler`].
///
/// ```
/// use tsv_core::exec::BfsEngine;
///
/// let a = tsv_sparse::gen::grid2d(12, 12).to_csr().without_diagonal();
/// let mut engine = BfsEngine::from_csr(&a).unwrap();
/// let r = engine.run(0).unwrap();
/// assert_eq!(r.reached(), 144);
/// assert!(!engine.profiler().is_empty());
/// ```
#[derive(Debug)]
pub struct BfsEngine {
    g: TileBfsGraph,
    opts: BfsOptions,
    ws: BfsWorkspace,
    profiler: Profiler,
    tracer: Option<Arc<Tracer>>,
    sanitizer: Option<Arc<Sanitizer>>,
    backend: ExecBackend,
}

impl BfsEngine {
    /// Wraps a prepared graph with default options.
    pub fn new(g: TileBfsGraph) -> Self {
        Self::with_options(g, BfsOptions::default())
    }

    /// Wraps a prepared graph.
    pub fn with_options(g: TileBfsGraph, opts: BfsOptions) -> Self {
        Self {
            g,
            opts,
            ws: BfsWorkspace::new(),
            profiler: Profiler::new(),
            tracer: None,
            sanitizer: None,
            backend: ExecBackend::default(),
        }
    }

    /// Builds the bitmask structure from an adjacency matrix (the paper's
    /// default parameters) and wraps it.
    pub fn from_csr<T: Copy + Sync>(a: &CsrMatrix<T>) -> Result<Self, SparseError> {
        Ok(Self::new(TileBfsGraph::from_csr(a)?))
    }

    /// [`Self::from_csr`] with telemetry: the bitmask-structure build is
    /// recorded as a `"bfs/tiling"` phase span and the tracer is attached,
    /// so every later `run` records its per-iteration events live.
    pub fn from_csr_traced<T: Copy + Sync>(
        a: &CsrMatrix<T>,
        tracer: Option<Arc<Tracer>>,
    ) -> Result<Self, SparseError> {
        let t0 = trace::start(tracer.as_deref());
        let mut engine = Self::from_csr(a)?;
        trace::phase(tracer.as_deref(), "bfs/tiling", t0);
        engine.tracer = tracer;
        Ok(engine)
    }

    /// Attaches (or detaches) a shared tracer. Every `run` then records
    /// one `"bfs"` event per iteration, carrying the frontier density,
    /// unvisited count and the kernel the policy selected.
    pub fn set_tracer(&mut self, tracer: Option<Arc<Tracer>>) {
        self.tracer = tracer;
    }

    /// The attached tracer, if any.
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.tracer.as_ref()
    }

    /// Attaches (or detaches) a shared race sanitizer. Every later `run`
    /// then executes each per-iteration kernel launch (and the final
    /// extra pass) inside a sanitizer epoch; accumulated violations stay
    /// on the `Sanitizer` for the caller to inspect.
    pub fn set_sanitizer(&mut self, sanitizer: Option<Arc<Sanitizer>>) {
        self.sanitizer = sanitizer;
    }

    /// The attached sanitizer, if any.
    pub fn sanitizer(&self) -> Option<&Arc<Sanitizer>> {
        self.sanitizer.as_ref()
    }

    /// Selects the execution substrate for every later `run` — see
    /// [`SpMSpVEngine::set_backend`]; the same model-only sanitizer rule
    /// applies.
    pub fn set_backend(&mut self, backend: ExecBackend) {
        emetrics::BACKEND_SWITCHES.inc();
        self.backend = backend;
    }

    /// The selected execution backend.
    pub fn backend(&self) -> &ExecBackend {
        &self.backend
    }

    /// Starts a fresh measurement window: clears the profiler and zeroes
    /// the workspace run/realloc counters. The prepared graph, the warm
    /// frontier buffers and any attached tracer are kept. The
    /// process-lifetime metrics registry accumulates across resets.
    pub fn reset(&mut self) {
        emetrics::RESETS.inc();
        self.profiler.clear();
        self.ws.reset_counters();
    }

    /// Runs a traversal from `source`, recording each iteration under
    /// `bfs/<kernel>` in the engine's profiler (and on the attached
    /// tracer, when present).
    pub fn run(&mut self, source: usize) -> Result<BfsResult, SparseError> {
        let r = tile_bfs_on_backend(
            &self.backend,
            &self.g,
            source,
            self.opts,
            &mut self.ws,
            self.tracer.as_deref(),
            self.sanitizer.as_deref(),
        )?;
        for it in &r.iterations {
            self.profiler
                .record(it.kernel.trace_label(), it.stats, it.wall);
            emetrics::BFS_ITER.observe(it.wall.as_nanos() as u64);
        }
        emetrics::BFS_RUNS.inc();
        if emetrics::WS_BFS.is_enabled() {
            emetrics::WS_BFS.set(self.ws.approx_bytes() as f64);
        }
        Ok(r)
    }

    /// Replaces the traversal options for every later `run` (e.g. to
    /// select the lane-blocked pull kernel after a traced construction).
    pub fn set_options(&mut self, opts: BfsOptions) {
        self.opts = opts;
    }

    /// The prepared graph.
    pub fn graph(&self) -> &TileBfsGraph {
        &self.g
    }

    /// Traversal options.
    pub fn options(&self) -> BfsOptions {
        self.opts
    }

    /// The reusable workspace (for its run/realloc counters).
    pub fn workspace(&self) -> &BfsWorkspace {
        &self.ws
    }

    /// The cumulative per-kernel breakdown.
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmspv::tile_spmspv_with;
    use tsv_sparse::gen::{banded, random_sparse_vector, uniform_random};

    #[test]
    fn engine_matches_one_shot_bitwise_and_reuses_scratch() {
        let a = uniform_random(500, 500, 6000, 11).to_csr();
        let tiled = TileMatrix::from_csr(&a, TileConfig::default()).unwrap();
        let mut engine = SpMSpVEngine::<PlusTimes>::new(tiled.clone());

        let mut fingerprint = None;
        for seed in 0..6u64 {
            let x = random_sparse_vector(500, [0.2, 0.003][seed as usize % 2], seed);
            let (y_engine, r_engine) = engine.multiply(&x).unwrap();
            let (y_once, r_once) = tile_spmspv_with(&tiled, &x, SpMSpVOptions::default()).unwrap();
            assert_eq!(y_engine, y_once, "seed {seed}");
            assert_eq!(r_engine.kernel, r_once.kernel);
            assert_eq!(r_engine.stats, r_once.stats);
            // Bitwise: identical accumulation order on both paths.
            let bits_e: Vec<u64> = y_engine.values().iter().map(|v| v.to_bits()).collect();
            let bits_o: Vec<u64> = y_once.values().iter().map(|v| v.to_bits()).collect();
            assert_eq!(bits_e, bits_o);

            match &fingerprint {
                None => fingerprint = Some(engine.scratch_fingerprint()),
                Some(f) => assert_eq!(
                    f,
                    &engine.scratch_fingerprint(),
                    "scratch moved or regrew on call {seed}"
                ),
            }
        }
        let m = engine.metrics();
        assert_eq!(m.calls, 6);
        assert_eq!(m.scratch_reshapes, 1, "sized once, at construction");
        assert!(!engine.profiler().is_empty());
    }

    #[test]
    fn compaction_scales_with_output_not_n() {
        // 8192-row matrix, one input nonzero: the touched-tile scan must
        // inspect a handful of slots, not all 8192.
        let n = 8192;
        let a = banded(n, 2, 1.0, 3).to_csr();
        let tiled = TileMatrix::from_csr(&a, TileConfig::default()).unwrap();
        let mut ws = SpMSpVWorkspace::new();
        let x = SparseVector::from_entries(n, vec![(4000, 1.0)]).unwrap();
        let (y, _) =
            spmspv_with_workspace::<PlusTimes>(&tiled, &x, SpMSpVOptions::default(), &mut ws)
                .unwrap();
        assert!(y.nnz() >= 1);
        let m = ws.metrics();
        assert!(
            m.slots_scanned <= 4 * tiled.nt() as u64,
            "scanned {} slots for a 1-nonzero product on n = {n}",
            m.slots_scanned
        );
        assert!(m.slots_reset <= 4 * tiled.nt() as u64);
    }

    #[test]
    fn empty_product_scans_nothing() {
        let a = banded(256, 2, 1.0, 3).to_csr();
        let tiled = TileMatrix::from_csr(&a, TileConfig::default()).unwrap();
        let mut ws = SpMSpVWorkspace::new();
        let x = SparseVector::<f64>::zeros(256);
        let (y, _) =
            spmspv_with_workspace::<PlusTimes>(&tiled, &x, SpMSpVOptions::default(), &mut ws)
                .unwrap();
        assert_eq!(y.nnz(), 0);
        assert_eq!(ws.metrics().slots_scanned, 0);
    }

    #[test]
    fn bfs_engine_reuses_workspace_across_sources() {
        let a = tsv_sparse::gen::grid2d(15, 15).to_csr().without_diagonal();
        let mut engine = BfsEngine::from_csr(&a).unwrap();
        let r1 = engine.run(0).unwrap();
        let r2 = engine.run(7).unwrap();
        assert_eq!(r1.reached(), 225);
        assert_eq!(r2.reached(), 225);
        assert_eq!(engine.workspace().runs(), 2);
        assert_eq!(engine.workspace().reallocs(), 1);
    }

    #[test]
    fn verify_option_proves_default_plans_and_lands_on_the_engine() {
        let a = uniform_random(300, 300, 3000, 5).to_csr();
        let tiled = TileMatrix::from_csr(&a, TileConfig::default()).unwrap();

        for balance in [Balance::OneWarpPerRowTile, Balance::binned()] {
            let mut engine = SpMSpVEngine::<PlusTimes>::with_options(
                tiled.clone(),
                SpMSpVOptions {
                    balance,
                    verify: true,
                    ..Default::default()
                },
            );
            assert!(engine.last_analysis().is_none());
            for density in [0.3, 0.004] {
                let x = random_sparse_vector(300, density, 9);
                let (_, r) = engine.multiply(&x).unwrap();
                let report = engine
                    .last_analysis()
                    .expect("verify option must record a report");
                assert!(report.is_proved(), "{:?}: {report}", r.kernel);
                assert!(report.plan.starts_with(r.kernel.trace_label()));
            }
        }

        // Without the option the engine keeps no report around.
        let mut engine = SpMSpVEngine::<PlusTimes>::new(tiled);
        let x = random_sparse_vector(300, 0.1, 2);
        engine.multiply(&x).unwrap();
        assert!(engine.last_analysis().is_none());
    }

    #[test]
    fn bfs_verify_option_proves_and_lands_on_the_result() {
        let a = tsv_sparse::gen::grid2d(12, 12).to_csr().without_diagonal();
        let mut engine = BfsEngine::from_csr(&a).unwrap();
        engine.set_options(BfsOptions {
            verify: true,
            ..Default::default()
        });
        let r = engine.run(0).unwrap();
        let report = r.analysis.expect("verify option must record a report");
        assert!(report.is_proved(), "{report}");
        assert!(report.plan.starts_with("bfs/"));
    }

    #[test]
    #[should_panic(expected = "dense tiles disabled")]
    fn min_plus_rejects_dense_tiles() {
        use crate::semiring::MinPlus;
        // dense_threshold 0.0 forces every stored tile dense.
        let a = banded(64, 3, 1.0, 1).to_csr();
        let cfg = TileConfig {
            dense_threshold: 0.0,
            ..Default::default()
        };
        let tiled = TileMatrix::from_csr(&a, cfg).unwrap();
        assert!(tiled.dense_tiles() > 0);
        let mut ws = SpMSpVWorkspace::new();
        let x = SparseVector::from_entries(64, vec![(0, 0.0)]).unwrap();
        let _ = spmspv_with_workspace::<MinPlus>(&tiled, &x, SpMSpVOptions::default(), &mut ws);
    }
}
