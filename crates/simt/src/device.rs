//! Device configurations for the analytic time model.
//!
//! Table 1 of the paper lists the two test GPUs; the presets below carry the
//! same published specifications. The model only needs aggregate throughput
//! numbers, not microarchitectural detail.

/// A GPU described by its aggregate throughput characteristics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceConfig {
    /// Marketing name, used in harness output.
    pub name: &'static str,
    /// Number of CUDA cores.
    pub cuda_cores: u32,
    /// Boost clock in GHz.
    pub clock_ghz: f64,
    /// Peak global memory bandwidth in GB/s.
    pub mem_bandwidth_gbps: f64,
    /// Streaming multiprocessor count (limits resident warps).
    pub sm_count: u32,
    /// Fixed cost per kernel launch in microseconds.
    pub launch_overhead_us: f64,
    /// Sustained atomic operations per second on global memory.
    pub atomics_per_sec: f64,
    /// Per-warp scheduling overhead in nanoseconds: the cost of issuing one
    /// warp through a hardware scheduler (block dispatch, warp slot
    /// allocation). Charged per launched warp and amortized across the SM
    /// schedulers by the model, it makes grids with many near-empty warps
    /// measurably worse than compacted ones.
    pub warp_sched_ns: f64,
}

impl DeviceConfig {
    /// Peak FP64-equivalent arithmetic throughput in FLOP/s. Consumer
    /// Ampere executes FP32 at 2 FLOP/core/cycle; the integer/bitwise path
    /// used by the BFS kernels runs at a similar rate, and the model treats
    /// one bit-word operation as one "flop" of that pipe.
    pub fn peak_flops(&self) -> f64 {
        f64::from(self.cuda_cores) * self.clock_ghz * 1e9 * 2.0
    }

    /// Peak memory bandwidth in bytes/second.
    pub fn peak_bytes_per_sec(&self) -> f64 {
        self.mem_bandwidth_gbps * 1e9
    }

    /// Maximum concurrently resident warps (48 per Ampere SM).
    pub fn max_resident_warps(&self) -> u64 {
        u64::from(self.sm_count) * 48
    }
}

/// NVIDIA GeForce RTX 3060 as specified in Table 1: 3584 cores @ 1.78 GHz,
/// 12 GB GDDR6, 360.0 GB/s.
pub const RTX_3060: DeviceConfig = DeviceConfig {
    name: "NVIDIA GeForce RTX 3060",
    cuda_cores: 3584,
    clock_ghz: 1.78,
    mem_bandwidth_gbps: 360.0,
    sm_count: 28,
    launch_overhead_us: 3.0,
    atomics_per_sec: 2.0e9,
    warp_sched_ns: 4.0,
};

/// NVIDIA GeForce RTX 3090 as specified in Table 1: 10496 cores @ 1.70 GHz,
/// 24 GB GDDR6X, 936.2 GB/s.
pub const RTX_3090: DeviceConfig = DeviceConfig {
    name: "NVIDIA GeForce RTX 3090",
    cuda_cores: 10496,
    clock_ghz: 1.70,
    mem_bandwidth_gbps: 936.2,
    sm_count: 82,
    launch_overhead_us: 3.0,
    atomics_per_sec: 4.0e9,
    warp_sched_ns: 2.0,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table_1() {
        assert_eq!(RTX_3060.cuda_cores, 3584);
        assert_eq!(RTX_3090.cuda_cores, 10496);
        assert!((RTX_3060.mem_bandwidth_gbps - 360.0).abs() < 1e-9);
        assert!((RTX_3090.mem_bandwidth_gbps - 936.2).abs() < 1e-9);
    }

    #[test]
    fn bigger_gpu_has_more_throughput() {
        assert!(RTX_3090.peak_flops() > RTX_3060.peak_flops());
        assert!(RTX_3090.peak_bytes_per_sec() > RTX_3060.peak_bytes_per_sec());
        assert!(RTX_3090.max_resident_warps() > RTX_3060.max_resident_warps());
    }
}
