//! Cross-crate BFS agreement: TileBFS (all kernel sets) and the three
//! baselines produce exactly the serial oracle's levels on every graph
//! class, including degenerate and directed inputs.

use tilespmspv::baselines::{enterprise_bfs, gswitch_bfs, gunrock_bfs};
use tilespmspv::core::bfs::{KernelKind, KernelSet, PolicyThresholds};
use tilespmspv::prelude::*;
use tilespmspv::sparse::gen::{
    banded, geometric_graph, grid2d, grid3d, rmat, tridiagonal, RmatConfig,
};
use tilespmspv::sparse::reference::{bfs_levels, bfs_parents_from_levels, validate_bfs_levels};
use tilespmspv::sparse::{CooMatrix, CsrMatrix};

fn graph_zoo() -> Vec<(&'static str, CsrMatrix<f64>)> {
    let mut zoo = vec![
        ("banded", banded(500, 7, 0.8, 1).to_csr()),
        ("grid2d", grid2d(23, 19).to_csr().without_diagonal()),
        ("grid3d", grid3d(8, 7, 6).to_csr().without_diagonal()),
        ("geometric", geometric_graph(900, 4.0, 2).to_csr()),
        ("rmat", rmat(RmatConfig::new(9, 10), 3).to_csr()),
        ("chain", tridiagonal(200).to_csr().without_diagonal()),
    ];

    // A star graph: one huge hub.
    let mut star = CooMatrix::new(400, 400);
    for v in 1..400 {
        star.push(0, v, 1.0);
        star.push(v, 0, 1.0);
    }
    zoo.push(("star", star.to_csr()));

    // Disconnected components.
    let mut islands = CooMatrix::new(300, 300);
    for base in [0usize, 100, 200] {
        for i in 0..40 {
            islands.push(base + i, base + i + 1, 1.0);
            islands.push(base + i + 1, base + i, 1.0);
        }
    }
    zoo.push(("islands", islands.to_csr()));

    // Directed cycle plus chords (asymmetric pattern).
    let mut dir = CooMatrix::new(150, 150);
    for i in 0..150 {
        dir.push((i + 1) % 150, i, 1.0);
        if i % 7 == 0 {
            dir.push((i + 40) % 150, i, 1.0);
        }
    }
    zoo.push(("directed", dir.to_csr()));

    zoo
}

#[test]
fn tile_bfs_matches_serial_for_every_kernel_set() {
    for (name, a) in graph_zoo() {
        let source = (0..a.nrows()).find(|&v| a.row_nnz(v) > 0).unwrap_or(0);
        let expect = bfs_levels(&a, source).unwrap();
        for nt in [32usize, 64] {
            for threshold in [0usize, 2, 6] {
                let g = TileBfsGraph::with_params(&a, nt, threshold).unwrap();
                for set in [KernelSet::PushCscOnly, KernelSet::PushOnly, KernelSet::All] {
                    let opts = BfsOptions {
                        kernels: set,
                        ..Default::default()
                    };
                    let r = tile_bfs(&g, source, opts).unwrap();
                    assert_eq!(
                        r.levels, expect,
                        "{name}: nt={nt} threshold={threshold} {set:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn every_implementation_passes_graph500_validation() {
    for (name, a) in graph_zoo() {
        let source = (0..a.nrows()).find(|&v| a.row_nnz(v) > 0).unwrap_or(0);
        let g = TileBfsGraph::from_csr(&a).unwrap();
        let levels = tile_bfs(&g, source, BfsOptions::default()).unwrap().levels;
        validate_bfs_levels(&a, source, &levels).unwrap_or_else(|e| panic!("{name}: {e}"));
        // Derived parents are valid tree edges.
        let parents = bfs_parents_from_levels(&a, source, &levels);
        for v in 0..a.nrows() {
            if levels[v] > 0 {
                let p = parents[v];
                assert!(p >= 0, "{name}: reached vertex {v} lacks a parent");
                assert_eq!(levels[p as usize], levels[v] - 1, "{name}: vertex {v}");
            }
        }
    }
}

#[test]
fn baselines_match_serial() {
    for (name, a) in graph_zoo() {
        let source = (0..a.nrows()).find(|&v| a.row_nnz(v) > 0).unwrap_or(0);
        let expect = bfs_levels(&a, source).unwrap();
        assert_eq!(
            gunrock_bfs(&a, source).unwrap().levels,
            expect,
            "{name}: gunrock"
        );
        assert_eq!(
            gswitch_bfs(&a, source).unwrap().levels,
            expect,
            "{name}: gswitch"
        );
        assert_eq!(
            enterprise_bfs(&a, source).unwrap().levels,
            expect,
            "{name}: enterprise"
        );
    }
}

#[test]
fn every_vertex_is_a_valid_source() {
    // Exhaustively traverse a small graph from every source.
    let a = geometric_graph(120, 4.0, 9).to_csr();
    let g = TileBfsGraph::from_csr(&a).unwrap();
    for source in 0..a.nrows() {
        let expect = bfs_levels(&a, source).unwrap();
        let r = tile_bfs(&g, source, BfsOptions::default()).unwrap();
        assert_eq!(r.levels, expect, "source {source}");
    }
}

#[test]
fn single_vertex_and_edgeless_graphs() {
    let single = CooMatrix::<f64>::new(1, 1).to_csr();
    let g = TileBfsGraph::from_csr(&single).unwrap();
    let r = tile_bfs(&g, 0, BfsOptions::default()).unwrap();
    assert_eq!(r.levels, vec![0]);
    assert_eq!(r.reached(), 1);

    let edgeless = CooMatrix::<f64>::new(50, 50).to_csr();
    let g = TileBfsGraph::from_csr(&edgeless).unwrap();
    let r = tile_bfs(&g, 7, BfsOptions::default()).unwrap();
    assert_eq!(r.reached(), 1);
    assert_eq!(r.levels[7], 0);
    assert!(r.levels.iter().filter(|&&l| l >= 0).count() == 1);

    assert_eq!(gunrock_bfs(&edgeless, 7).unwrap().reached(), 1);
}

/// A disconnected symmetric graph engineered so the policy holds the
/// Pull-CSC kernel across consecutive iterations: a hub layer visits 60%
/// of the graph in one step (dropping the unvisited fraction below the
/// pull threshold), two further layers keep the frontier dense enough to
/// stay off Push-CSC, and an unreachable island chain pins the unvisited
/// fraction above zero for the whole traversal.
#[test]
fn pull_csc_stays_selected_on_disconnected_graphs() {
    let n = 200;
    let mut coo = CooMatrix::new(n, n);
    let edge = |coo: &mut CooMatrix<f64>, u: usize, v: usize| {
        coo.push(u, v, 1.0);
        coo.push(v, u, 1.0);
    };
    // Hub layer: the source reaches vertices 1..=120 in one step.
    for v in 1..=120 {
        edge(&mut coo, 0, v);
    }
    // Layer 2 (121..151) hangs off layer 1, layer 3 (151..180) off layer 2.
    for (i, v) in (121..151).enumerate() {
        edge(&mut coo, 1 + (i % 120), v);
    }
    for (i, v) in (151..180).enumerate() {
        edge(&mut coo, 121 + (i % 30), v);
    }
    // The unreachable island: a chain over 180..200.
    for v in 180..n - 1 {
        edge(&mut coo, v, v + 1);
    }
    let a = coo.to_csr();

    let opts = BfsOptions {
        thresholds: PolicyThresholds {
            push_csc_density: 0.01,
            pull_unvisited_frac: 0.5,
        },
        ..Default::default()
    };
    let g = TileBfsGraph::from_csr(&a).unwrap();
    let r = tile_bfs(&g, 0, opts).unwrap();

    let kernels: Vec<KernelKind> = r.iterations.iter().map(|it| it.kernel).collect();
    assert_eq!(
        r.iterations[0].kernel,
        KernelKind::PushCsc,
        "a single-vertex frontier must start on Push-CSC: {kernels:?}"
    );
    let pulls = kernels
        .iter()
        .filter(|&&k| k == KernelKind::PullCsc)
        .count();
    assert!(
        pulls >= 2,
        "the fixture must hold Pull-CSC for at least two iterations, got {pulls}: {kernels:?}"
    );

    // The pull iterations still produce an exactly-valid traversal.
    let expect = bfs_levels(&a, 0).unwrap();
    assert_eq!(r.levels, expect);
    validate_bfs_levels(&a, 0, &r.levels).expect("graph500 validation");
    let parents = bfs_parents_from_levels(&a, 0, &r.levels);
    for (v, &p) in parents.iter().enumerate() {
        if r.levels[v] > 0 {
            assert!(p >= 0, "reached vertex {v} lacks a parent");
            assert_eq!(r.levels[p as usize], r.levels[v] - 1, "vertex {v}");
        }
    }
    for v in 180..n {
        assert_eq!(r.levels[v], -1, "island vertex {v} must stay unreached");
    }
}

#[test]
fn iteration_traces_are_consistent() {
    let a = grid2d(30, 30).to_csr().without_diagonal();
    let g = TileBfsGraph::from_csr(&a).unwrap();
    let r = tile_bfs(&g, 0, BfsOptions::default()).unwrap();
    // Discovered counts across iterations sum to reached - 1 (the source
    // is not "discovered").
    let total: usize = r.iterations.iter().map(|i| i.discovered).sum();
    assert_eq!(total, r.reached() - 1);
    // Frontier of iteration k+1 equals discovered of iteration k.
    for w in r.iterations.windows(2) {
        assert_eq!(w[1].frontier, w[0].discovered);
    }
    // Levels are contiguous: every level from 0 to max has a vertex.
    let max = *r.levels.iter().max().unwrap();
    for l in 0..=max {
        assert!(r.levels.contains(&l), "missing level {l}");
    }
}
