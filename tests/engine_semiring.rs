//! Integration tests for the execution-plan layer: semiring-generic
//! engines against the serial oracles, allocation-stable workspace reuse,
//! and the touched-tile compaction work bound — all through the public
//! facade API.

use tilespmspv::core::exec::SpMSpVEngine;
use tilespmspv::core::semiring::{spmspv_semiring, MinPlus, OrAnd, PlusTimes};
use tilespmspv::core::spmspv::tile_spmspv_with;
use tilespmspv::core::tile::{TileConfig, TileMatrix, TileSize};
use tilespmspv::sparse::gen::{banded, grid2d, random_sparse_vector, uniform_random};
use tilespmspv::sparse::{CsrMatrix, SparseVector};

/// (min, +) through the tiled engine must agree exactly with the serial
/// semiring oracle on every tile size and extraction setting. min is
/// order-independent and each product is a single f64 addition, so the
/// agreement is exact, not approximate.
#[test]
fn min_plus_engine_matches_serial_oracle_across_layouts() {
    let matrices = [
        ("banded", banded(500, 6, 0.8, 3).to_csr()),
        ("uniform", uniform_random(400, 400, 5000, 9).to_csr()),
    ];
    for (name, a) in &matrices {
        let oracle_csc = a.to_csc();
        for ts in TileSize::all() {
            for extract in [0usize, 4] {
                let cfg = TileConfig {
                    tile_size: ts,
                    extract_threshold: extract,
                    ..Default::default()
                };
                // from_csr disables dense tiles for MinPlus (its zero is
                // +inf, not the structural default).
                let mut engine = SpMSpVEngine::<MinPlus>::from_csr(a, cfg).unwrap();
                for seed in 0..4u64 {
                    let sparsity = [0.002, 0.05][seed as usize % 2];
                    let x = random_sparse_vector(a.ncols(), sparsity, seed);
                    let (y, _) = engine.multiply(&x).unwrap();
                    let expect = spmspv_semiring::<MinPlus>(&oracle_csc, &x).unwrap();
                    assert_eq!(y, expect, "{name} {ts} extract {extract} seed {seed}");
                }
            }
        }
    }
}

/// (OR, AND) through the engine, iterated to a fixed point, reproduces the
/// BFS levels of the dedicated bitmask path.
#[test]
fn or_and_engine_levels_match_tile_bfs() {
    let a = grid2d(18, 13).to_csr().without_diagonal();
    let n = a.nrows();
    let pattern = CsrMatrix::from_parts(
        n,
        n,
        a.row_ptr().to_vec(),
        a.col_idx().to_vec(),
        vec![true; a.nnz()],
    )
    .unwrap();

    let mut engine = SpMSpVEngine::<OrAnd>::from_csr(&pattern, TileConfig::default()).unwrap();
    let source = 7usize;
    let mut levels = vec![-1i32; n];
    levels[source] = 0;
    let mut frontier = SparseVector::from_entries(n, vec![(source as u32, true)]).unwrap();
    let mut level = 0;
    while frontier.nnz() > 0 {
        level += 1;
        let (reached, _) = engine.multiply(&frontier).unwrap();
        let mut next = Vec::new();
        for (v, _) in reached.iter() {
            if levels[v] < 0 {
                levels[v] = level;
                next.push((v as u32, true));
            }
        }
        frontier = SparseVector::from_entries(n, next).unwrap();
    }

    let g = tilespmspv::core::bfs::TileBfsGraph::from_csr(&a).unwrap();
    let bfs = tilespmspv::core::bfs::tile_bfs(&g, source, Default::default()).unwrap();
    assert_eq!(levels, bfs.levels);
}

/// Repeated engine calls reuse the same scratch allocations and return
/// bit-for-bit the same results as the one-shot API.
#[test]
fn engine_reuse_is_allocation_stable_and_bitwise_equal() {
    let a = uniform_random(600, 600, 7000, 21).to_csr();
    let tiled = TileMatrix::from_csr(&a, TileConfig::default()).unwrap();
    let mut engine = SpMSpVEngine::<PlusTimes>::from_csr(&a, TileConfig::default()).unwrap();

    let mut fingerprint = None;
    for seed in 0..5u64 {
        let sparsity = [0.3, 0.004][seed as usize % 2];
        let x = random_sparse_vector(600, sparsity, seed);
        let (y_engine, r_engine) = engine.multiply(&x).unwrap();
        let (y_once, r_once) = tile_spmspv_with(&tiled, &x, Default::default()).unwrap();
        assert_eq!(r_engine.kernel, r_once.kernel);
        assert_eq!(r_engine.stats, r_once.stats);
        assert_eq!(y_engine.indices(), y_once.indices());
        let bits_e: Vec<u64> = y_engine.values().iter().map(|v| v.to_bits()).collect();
        let bits_o: Vec<u64> = y_once.values().iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits_e, bits_o, "seed {seed}");

        match &fingerprint {
            None => fingerprint = Some(engine.scratch_fingerprint()),
            Some(fp) => assert_eq!(
                *fp,
                engine.scratch_fingerprint(),
                "scratch reallocated on call {seed}"
            ),
        }
    }
    assert_eq!(engine.metrics().calls, 5);
    assert_eq!(engine.metrics().scratch_reshapes, 1);
}

/// `multiply_into` recycles the caller's vector buffers: after warmup the
/// output ping-pongs between two stable allocations instead of allocating
/// a fresh vector per call, and the results stay bit-identical to
/// `multiply`.
#[test]
fn multiply_into_ping_pongs_between_two_allocations() {
    let a = uniform_random(500, 500, 6000, 13).to_csr();
    let mut engine = SpMSpVEngine::<PlusTimes>::from_csr(&a, TileConfig::default()).unwrap();
    let mut check = SpMSpVEngine::<PlusTimes>::from_csr(&a, TileConfig::default()).unwrap();
    let x = random_sparse_vector(500, 0.05, 4);
    let (expect, _) = check.multiply(&x).unwrap();

    let mut y = SparseVector::zeros(500);
    let mut staging_ptrs = std::collections::BTreeSet::new();
    let mut output_ptrs = std::collections::BTreeSet::new();
    for call in 0..6 {
        engine.multiply_into(&x, &mut y).unwrap();
        assert_eq!(y.indices(), expect.indices(), "call {call}");
        let bits: Vec<u64> = y.values().iter().map(|v| v.to_bits()).collect();
        let expect_bits: Vec<u64> = expect.values().iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits, expect_bits, "call {call}");
        // Skip the warmup calls where the two buffers first grow to size.
        if call >= 2 {
            staging_ptrs.insert(engine.output_fingerprint()[0].0);
            output_ptrs.insert(y.indices().as_ptr() as usize);
        }
    }
    // One allocation lives in the engine's staging slot while the other is
    // in the caller's hands; each pointer set sees at most the two of them.
    assert!(
        staging_ptrs.len() <= 2,
        "staging buffer reallocated: {} distinct pointers",
        staging_ptrs.len()
    );
    assert!(
        output_ptrs.len() <= 2,
        "output buffer reallocated: {} distinct pointers",
        output_ptrs.len()
    );
    // Between them the loop touched at most two index allocations total.
    let all: std::collections::BTreeSet<usize> =
        staging_ptrs.union(&output_ptrs).copied().collect();
    assert!(
        all.len() <= 2,
        "ping-pong should cycle two buffers, saw {}",
        all.len()
    );
}

/// The dense-tile fast path stays available to semirings whose zero is the
/// structural default: force dense tiles and check against the oracle.
#[test]
fn plus_times_engine_agrees_on_dense_tiles() {
    let a = banded(256, 12, 1.0, 5).to_csr();
    let cfg = TileConfig {
        dense_threshold: 0.0, // every stored tile becomes dense
        ..Default::default()
    };
    let tiled = TileMatrix::from_csr(&a, cfg).unwrap();
    assert!(tiled.dense_tiles() > 0, "config must force dense tiles");
    let mut engine = SpMSpVEngine::<PlusTimes>::with_options(tiled, Default::default());
    let x = random_sparse_vector(256, 0.1, 2);
    let (y, _) = engine.multiply(&x).unwrap();
    let expect = spmspv_semiring::<PlusTimes>(&a.to_csc(), &x).unwrap();
    assert_eq!(y.indices(), expect.indices());
    for ((_, got), (_, want)) in y.iter().zip(expect.iter()) {
        assert!((got - want).abs() < 1e-9);
    }
}

/// Compaction work is bounded by the touched tiles, not the matrix
/// dimension: a single-entry input on a banded matrix scans a handful of
/// tile slots even when n is large.
#[test]
fn compaction_work_tracks_output_not_dimension() {
    let n = 8192;
    let a = banded(n, 2, 1.0, 3).to_csr();
    let mut engine = SpMSpVEngine::<PlusTimes>::from_csr(&a, TileConfig::default()).unwrap();
    let x = SparseVector::from_entries(n, vec![(4000, 1.0)]).unwrap();
    engine.multiply(&x).unwrap();
    let m = engine.metrics();
    let nt = engine.matrix().nt() as u64;
    assert!(
        m.slots_scanned <= 4 * nt,
        "scanned {} slots; expected a few tiles of {} each, not n = {}",
        m.slots_scanned,
        nt,
        n
    );
    assert_eq!(m.slots_scanned, m.slots_reset);
}
