//! Figure 7 bench: BFS wall time of TileBFS vs Gunrock vs GSwitch across
//! graph sizes and families. `repro fig7` adds the two-device modeled
//! times from the kernel statistics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tsv_baselines::{gswitch_bfs, gunrock_bfs};
use tsv_bench::workloads::{bfs_source, fig7_sweep};
use tsv_core::bfs::{tile_bfs, BfsOptions, TileBfsGraph};

fn bench_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for p in fig7_sweep(11) {
        let a = p.matrix;
        let src = bfs_source(&a);
        let g = TileBfsGraph::from_csr(&a).unwrap();
        let label = format!("{}-{}", p.family, a.nrows());

        group.bench_with_input(BenchmarkId::new("TileBFS", &label), &label, |b, _| {
            b.iter(|| black_box(tile_bfs(&g, src, BfsOptions::default()).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("Gunrock", &label), &label, |b, _| {
            b.iter(|| black_box(gunrock_bfs(&a, src).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("GSwitch", &label), &label, |b, _| {
            b.iter(|| black_box(gswitch_bfs(&a, src).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
