//! Named-kernel profiling.
//!
//! Harness code records each kernel invocation under a label; the profiler
//! aggregates counts, wall time and modeled device time and renders an
//! aligned report — the "which kernel is the bottleneck" view the paper's
//! iteration analysis (§4.5) is built from.

use crate::device::DeviceConfig;
use crate::model::kernel_time;
use crate::stats::KernelStats;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

/// Aggregated record of one kernel label.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProfileEntry {
    /// Number of recorded launches.
    pub launches: usize,
    /// Summed work counters.
    pub stats: KernelStats,
    /// Summed wall time.
    pub wall: Duration,
}

impl ProfileEntry {
    /// Modeled device time (seconds) for all recorded launches: each launch
    /// carries an equal share of the aggregated work plus its own launch
    /// overhead on `device`. This is the figure `report` prints and the
    /// telemetry run summary exports.
    pub fn modeled_secs(&self, device: &DeviceConfig) -> f64 {
        let per_launch = scale_stats(&self.stats, 1.0 / self.launches.max(1) as f64);
        kernel_time(&per_launch, device) * self.launches as f64
    }
}

/// Thread-safe aggregation of kernel statistics by label.
#[derive(Debug, Default)]
pub struct Profiler {
    entries: Mutex<BTreeMap<String, ProfileEntry>>,
}

impl Profiler {
    /// An empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one launch under `label`.
    pub fn record(&self, label: &str, stats: KernelStats, wall: Duration) {
        let mut map = self.entries.lock().expect("profiler lock");
        let e = map.entry(label.to_string()).or_default();
        e.launches += 1;
        e.stats += stats;
        e.wall += wall;
    }

    /// Snapshot of the aggregated entries, sorted by label.
    pub fn entries(&self) -> Vec<(String, ProfileEntry)> {
        self.entries
            .lock()
            .expect("profiler lock")
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().expect("profiler lock").is_empty()
    }

    /// Discards all recorded entries, starting a fresh measurement window.
    /// Long-lived engines expose this through their `reset` so they can be
    /// re-measured without being rebuilt.
    pub fn clear(&self) {
        self.entries.lock().expect("profiler lock").clear();
    }

    /// Folds another profiler's aggregates into this one (label-wise sum) —
    /// used to combine the per-engine breakdowns into one run-level report.
    pub fn merge(&self, other: &Self) {
        let mut map = self.entries.lock().expect("profiler lock");
        for (label, e) in other.entries() {
            let t = map.entry(label).or_default();
            t.launches += e.launches;
            t.stats += e.stats;
            t.wall += e.wall;
        }
    }

    /// Renders an aligned per-kernel report. Modeled time charges each
    /// recorded launch its own launch overhead on `device`.
    pub fn report(&self, device: &DeviceConfig) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<22} {:>8} {:>12} {:>12} {:>12} {:>10} {:>12}\n",
            "kernel", "launches", "gmem KiB", "scattered", "flops+bitops", "atomics", "model ms"
        ));
        let mut total_model = 0.0;
        for (label, e) in self.entries() {
            let model_ms = e.modeled_secs(device) * 1e3;
            total_model += model_ms;
            out.push_str(&format!(
                "{:<22} {:>8} {:>12} {:>12} {:>12} {:>10} {:>12.4}\n",
                label,
                e.launches,
                e.stats.gmem_bytes() / 1024,
                e.stats.gmem_scattered_bytes / 1024,
                e.stats.flops + e.stats.bitops,
                e.stats.atomics,
                model_ms,
            ));
        }
        out.push_str(&format!(
            "total modeled: {total_model:.4} ms on {}\n",
            device.name
        ));
        out
    }
}

// Rounds to nearest rather than truncating: with many launches the
// per-launch share of each counter is fractional, and flooring every field
// systematically undercounts the modeled per-launch work.
fn scale_stats(s: &KernelStats, f: f64) -> KernelStats {
    KernelStats {
        gmem_read_bytes: (s.gmem_read_bytes as f64 * f).round() as u64,
        gmem_write_bytes: (s.gmem_write_bytes as f64 * f).round() as u64,
        gmem_scattered_bytes: (s.gmem_scattered_bytes as f64 * f).round() as u64,
        atomics: (s.atomics as f64 * f).round() as u64,
        flops: (s.flops as f64 * f).round() as u64,
        bitops: (s.bitops as f64 * f).round() as u64,
        warps: (s.warps as f64 * f).round().max(1.0) as u64,
        lane_steps: (s.lane_steps as f64 * f).round() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::RTX_3090;

    fn stats(bytes: u64) -> KernelStats {
        let mut s = KernelStats::default();
        s.read(bytes as usize);
        s.warps = 100;
        s
    }

    #[test]
    fn records_aggregate_per_label() {
        let p = Profiler::new();
        p.record("push-csc", stats(1000), Duration::from_micros(5));
        p.record("push-csc", stats(500), Duration::from_micros(3));
        p.record("pull-csc", stats(100), Duration::from_micros(1));
        let entries = p.entries();
        assert_eq!(entries.len(), 2);
        let (name, e) = &entries[1];
        assert_eq!(name, "push-csc");
        assert_eq!(e.launches, 2);
        assert_eq!(e.stats.gmem_read_bytes, 1500);
        assert_eq!(e.wall, Duration::from_micros(8));
    }

    #[test]
    fn report_renders_every_label() {
        let p = Profiler::new();
        assert!(p.is_empty());
        p.record("k1", stats(1 << 20), Duration::from_millis(1));
        p.record("k2", stats(1 << 10), Duration::from_millis(1));
        let r = p.report(&RTX_3090);
        assert!(r.contains("k1"));
        assert!(r.contains("k2"));
        assert!(r.contains("total modeled"));
        assert!(!p.is_empty());
    }

    #[test]
    fn merge_folds_label_wise() {
        let a = Profiler::new();
        let b = Profiler::new();
        a.record("k", stats(100), Duration::from_micros(1));
        b.record("k", stats(50), Duration::from_micros(2));
        b.record("other", stats(10), Duration::from_micros(1));
        a.merge(&b);
        let entries = a.entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].0, "k");
        assert_eq!(entries[0].1.launches, 2);
        assert_eq!(entries[0].1.stats.gmem_read_bytes, 150);
        assert_eq!(entries[0].1.wall, Duration::from_micros(3));
    }

    #[test]
    fn per_launch_share_rounds_instead_of_truncating() {
        // 2 launches sharing 1999 bytes: the per-launch share is 999.5,
        // which truncation floored to 999. Rounding keeps every field
        // within 0.5 of the exact fractional share.
        let shared = scale_stats(&stats(1999), 1.0 / 2.0);
        assert_eq!(shared.gmem_read_bytes, 1000, "999.5 must round up");

        // The systematic effect the fix targets: modeled time of a
        // many-launch label must not undercount relative to the exact
        // fractional share. With truncation, 101 bytes over 100 launches
        // modeled 1 byte/launch (1% low across every field).
        let e = ProfileEntry {
            launches: 100,
            stats: stats(149),
            wall: Duration::ZERO,
        };
        let per_launch = scale_stats(&e.stats, 1.0 / 100.0);
        assert_eq!(per_launch.gmem_read_bytes, 1, "1.49 rounds to 1");
        let e2 = ProfileEntry {
            launches: 100,
            stats: stats(151),
            wall: Duration::ZERO,
        };
        let p2 = scale_stats(&e2.stats, 1.0 / 100.0);
        assert_eq!(p2.gmem_read_bytes, 2, "1.51 rounds to 2, truncation gave 1");
        assert!(
            e2.modeled_secs(&RTX_3090) >= e.modeled_secs(&RTX_3090),
            "more bytes must never model faster"
        );
    }

    #[test]
    fn clear_starts_a_fresh_window() {
        let p = Profiler::new();
        p.record("k", stats(100), Duration::from_micros(5));
        assert!(!p.is_empty());
        p.clear();
        assert!(p.is_empty());
        assert!(p.entries().is_empty());
        // The profiler stays usable after clearing.
        p.record("k2", stats(10), Duration::from_micros(1));
        assert_eq!(p.entries().len(), 1);
        assert_eq!(p.entries()[0].0, "k2");
    }

    #[test]
    fn concurrent_recording_is_safe() {
        let p = std::sync::Arc::new(Profiler::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let p = p.clone();
                scope.spawn(move || {
                    for _ in 0..100 {
                        p.record("k", stats(10), Duration::from_nanos(10));
                    }
                });
            }
        });
        assert_eq!(p.entries()[0].1.launches, 400);
    }
}
