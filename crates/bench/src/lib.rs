//! Shared harness code for the benchmark suite.
//!
//! The Criterion benches (`benches/`) and the `repro` binary both build
//! their workloads and metrics through this crate so that the numbers they
//! report are directly comparable.

#![forbid(unsafe_code)]

pub mod measure;
pub mod workloads;

pub use measure::{gflops, gteps, median_secs, useful_products};
pub use workloads::{bfs_source, fig6_sparsities, fig7_sweep, Fig7Point};
