//! Race & determinism sanitizer: a shadow-execution layer over global
//! memory.
//!
//! The SIMT substrate has three concurrent write paths into global memory —
//! direct per-warp stores into exclusively-owned chunks, relaxed atomics in
//! [`crate::atomic`], and per-warp partial buffers merged after the launch.
//! The first is race-free only if chunk ownership really is exclusive, and
//! the proof so far has been informal. The [`Sanitizer`] turns it into a
//! checked property: when enabled, instrumented kernels log every global
//! access (buffer id, element index, read/write/atomic-RMW, warp, lane)
//! through the free helpers [`read`], [`write`] and [`rmw`], and at each
//! launch barrier ([`barrier`]) the log is scanned for intra-launch
//! conflicts between *different warps* that are not mediated by an atomic:
//!
//! * plain write vs. any access from another warp → the classic data race
//!   ([`ConflictKind::WriteWrite`] when the other side also stores,
//!   [`ConflictKind::ReadWrite`] when it loads);
//! * atomic RMW vs. a plain read from another warp →
//!   [`ConflictKind::ReadWrite`]: the read is schedule-dependent even
//!   though each individual operation is well-defined.
//!
//! Atomic-vs-atomic and read-vs-read pairs are fine, as are any number of
//! accesses from a single warp (warps are the scheduling unit; lanes within
//! a warp run in lock step). Each violation reports the kernel label, the
//! buffer and element, the tile coordinate (`index / nt` for the launch's
//! tile height), and the two conflicting access sites.
//!
//! Call sites are written against `Option<&Sanitizer>` exactly like the
//! trace gate in [`crate::trace`]: with no sanitizer (or a disabled one)
//! each helper costs a single branch, so the hot engine paths stay
//! unperturbed when checking is off.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// What an instrumented access does to its element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AccessKind {
    /// Plain (non-atomic) load.
    Read,
    /// Plain (non-atomic) store.
    Write,
    /// Atomic read-modify-write (`atomicOr`, `atomicAdd`, ...).
    AtomicRmw,
}

impl AccessKind {
    fn label(self) -> &'static str {
        match self {
            Self::Read => "read",
            Self::Write => "write",
            Self::AtomicRmw => "atomic",
        }
    }
}

/// One logged access, kept only while its launch epoch is open.
#[derive(Debug, Clone, Copy)]
struct Access {
    buf: &'static str,
    index: u64,
    kind: AccessKind,
    warp: u32,
    lane: u32,
}

/// How two sites conflict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConflictKind {
    /// Two unmediated stores to the same element from different warps.
    WriteWrite,
    /// An unmediated store (or an atomic RMW) racing a plain load from
    /// another warp: the loaded value depends on warp schedule.
    ReadWrite,
}

impl ConflictKind {
    fn label(self) -> &'static str {
        match self {
            Self::WriteWrite => "write-write",
            Self::ReadWrite => "read-write",
        }
    }
}

/// One side of a conflict: which warp/lane touched the element, and how.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Site {
    /// Logical warp id within the launch.
    pub warp: u32,
    /// Lane within the warp.
    pub lane: u32,
    /// What the access did.
    pub kind: AccessKind,
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "warp {} lane {} ({})",
            self.warp,
            self.lane,
            self.kind.label()
        )
    }
}

/// A detected conflict: two accesses to the same element, from different
/// warps, within one launch, not mediated by an atomic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Label of the launch that raced (as passed to [`begin`]).
    pub kernel: String,
    /// Launch epoch (0-based count of barriers since the sanitizer was
    /// created or cleared).
    pub epoch: u64,
    /// Buffer id the element lives in.
    pub buffer: &'static str,
    /// Element index within the buffer.
    pub index: u64,
    /// Tile coordinate: `index / nt` for the `nt` passed to [`begin`]
    /// (0 when the launch declared no tile height).
    pub tile: u64,
    /// Conflict class.
    pub kind: ConflictKind,
    /// The first conflicting access site (in log order).
    pub first: Site,
    /// The second conflicting access site.
    pub second: Site,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} conflict in `{}` on {}[{}] (tile {}): {} vs {} [epoch {}]",
            self.kind.label(),
            self.kernel,
            self.buffer,
            self.index,
            self.tile,
            self.first,
            self.second,
            self.epoch,
        )
    }
}

/// Aggregate counters for telemetry (`RunSummary`'s `sanitizer` object).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SanitizerSummary {
    /// Launch barriers analyzed.
    pub launches: u64,
    /// Accesses logged across all epochs.
    pub accesses: u64,
    /// Atomic read-modify-writes among those accesses. The static
    /// verifier's differential harness uses this to justify non-`Proved`
    /// verdicts: a plan that needs atomics should actually claim some.
    pub atomics: u64,
    /// Conflicts detected across all epochs.
    pub violations: u64,
}

struct Inner {
    kernel: String,
    nt: u64,
    epoch: u64,
    accesses: Vec<Access>,
    violations: Vec<Violation>,
    launches: u64,
    total_accesses: u64,
    total_atomics: u64,
}

/// Thread-safe shadow-access recorder and conflict detector. Cheap to share
/// (`Arc<Sanitizer>`); disabled recording costs one atomic load per access.
pub struct Sanitizer {
    enabled: AtomicBool,
    inner: Mutex<Inner>,
}

impl fmt::Debug for Sanitizer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.summary();
        f.debug_struct("Sanitizer")
            .field("enabled", &self.is_enabled())
            .field("launches", &s.launches)
            .field("accesses", &s.accesses)
            .field("violations", &s.violations)
            .finish()
    }
}

impl Default for Sanitizer {
    fn default() -> Self {
        Self::new()
    }
}

impl Sanitizer {
    /// An enabled sanitizer with empty logs.
    pub fn new() -> Self {
        Self {
            enabled: AtomicBool::new(true),
            inner: Mutex::new(Inner {
                kernel: String::new(),
                nt: 0,
                epoch: 0,
                accesses: Vec::new(),
                violations: Vec::new(),
                launches: 0,
                total_accesses: 0,
                total_atomics: 0,
            }),
        }
    }

    /// Whether recording is on. The single branch every access pays.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off. Already-detected violations are kept.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Logs one access. Prefer the free helpers [`read`]/[`write`]/[`rmw`],
    /// which fold the `Option` and enabled checks into one call.
    pub fn record(
        &self,
        kind: AccessKind,
        buf: &'static str,
        index: usize,
        warp: usize,
        lane: usize,
    ) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.inner.lock().expect("sanitizer poisoned");
        inner.total_accesses += 1;
        if kind == AccessKind::AtomicRmw {
            inner.total_atomics += 1;
        }
        inner.accesses.push(Access {
            buf,
            index: index as u64,
            kind,
            warp: warp as u32,
            lane: lane as u32,
        });
    }

    /// Opens a launch epoch: names the kernel and declares its tile height
    /// `nt` (used to derive tile coordinates in reports; pass 0 for
    /// untiled launches). Any accesses still pending from an unclosed
    /// previous epoch are analyzed first.
    pub fn begin_launch(&self, kernel: &str, nt: usize) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.inner.lock().expect("sanitizer poisoned");
        if !inner.accesses.is_empty() {
            Self::analyze(&mut inner);
        }
        inner.kernel.clear();
        inner.kernel.push_str(kernel);
        inner.nt = nt as u64;
    }

    /// Closes the current launch epoch: detects conflicts among the logged
    /// accesses, appends them to the violation list, and clears the access
    /// log. Returns the number of *new* violations.
    pub fn end_launch(&self) -> usize {
        if !self.is_enabled() {
            return 0;
        }
        let mut inner = self.inner.lock().expect("sanitizer poisoned");
        inner.launches += 1;
        Self::analyze(&mut inner)
    }

    fn analyze(inner: &mut Inner) -> usize {
        let mut accesses = std::mem::take(&mut inner.accesses);
        accesses.sort_unstable_by(|a, b| (a.buf, a.index).cmp(&(b.buf, b.index)));
        let before = inner.violations.len();
        let mut i = 0;
        while i < accesses.len() {
            let mut j = i + 1;
            while j < accesses.len()
                && accesses[j].buf == accesses[i].buf
                && accesses[j].index == accesses[i].index
            {
                j += 1;
            }
            let group = &accesses[i..j];
            if let Some((first, second, kind)) = conflict_in(group) {
                inner.violations.push(Violation {
                    kernel: inner.kernel.clone(),
                    epoch: inner.epoch,
                    buffer: group[0].buf,
                    index: group[0].index,
                    tile: group[0].index.checked_div(inner.nt).unwrap_or(0),
                    kind,
                    first,
                    second,
                });
            }
            i = j;
        }
        inner.epoch += 1;
        accesses.clear();
        inner.accesses = accesses; // keep the allocation for the next epoch
        inner.violations.len() - before
    }

    /// All violations detected so far, in detection order.
    pub fn violations(&self) -> Vec<Violation> {
        self.inner
            .lock()
            .expect("sanitizer poisoned")
            .violations
            .clone()
    }

    /// Number of violations detected so far.
    pub fn violation_count(&self) -> usize {
        self.inner
            .lock()
            .expect("sanitizer poisoned")
            .violations
            .len()
    }

    /// Aggregate counters for telemetry.
    pub fn summary(&self) -> SanitizerSummary {
        let inner = self.inner.lock().expect("sanitizer poisoned");
        SanitizerSummary {
            launches: inner.launches,
            accesses: inner.total_accesses,
            atomics: inner.total_atomics,
            violations: inner.violations.len() as u64,
        }
    }

    /// True when no accesses were logged and no violations detected.
    pub fn is_empty(&self) -> bool {
        let inner = self.inner.lock().expect("sanitizer poisoned");
        inner.total_accesses == 0 && inner.violations.is_empty()
    }

    /// Discards all logs, violations and counters.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("sanitizer poisoned");
        inner.accesses.clear();
        inner.violations.clear();
        inner.kernel.clear();
        inner.nt = 0;
        inner.epoch = 0;
        inner.launches = 0;
        inner.total_accesses = 0;
        inner.total_atomics = 0;
    }
}

/// Scans one same-element access group for the first unmediated conflict
/// between two different warps.
fn conflict_in(group: &[Access]) -> Option<(Site, Site, ConflictKind)> {
    let site = |a: &Access| Site {
        warp: a.warp,
        lane: a.lane,
        kind: a.kind,
    };
    // A plain write conflicts with ANY access from another warp.
    if let Some(w) = group.iter().find(|a| a.kind == AccessKind::Write) {
        if let Some(other) = group.iter().find(|a| a.warp != w.warp) {
            let kind = if other.kind == AccessKind::Read {
                ConflictKind::ReadWrite
            } else {
                ConflictKind::WriteWrite
            };
            return Some((site(w), site(other), kind));
        }
        return None;
    }
    // No plain write: an atomic RMW still races a plain read elsewhere.
    if let Some(r) = group.iter().find(|a| a.kind == AccessKind::Read) {
        if let Some(other) = group
            .iter()
            .find(|a| a.kind == AccessKind::AtomicRmw && a.warp != r.warp)
        {
            return Some((site(other), site(r), ConflictKind::ReadWrite));
        }
    }
    None
}

// ------------------------------------------------------------------
// Free helpers: the `Option<&Sanitizer>` gate, same shape as the trace
// gate. Disabled cost is the `match`/`if` — one branch per access.
// ------------------------------------------------------------------

/// Logs a plain load of `buf[index]` by `warp`/`lane`.
#[inline]
pub fn read(san: Option<&Sanitizer>, buf: &'static str, index: usize, warp: usize, lane: usize) {
    if let Some(s) = san {
        if s.is_enabled() {
            s.record(AccessKind::Read, buf, index, warp, lane);
        }
    }
}

/// Logs a plain store to `buf[index]` by `warp`/`lane`.
#[inline]
pub fn write(san: Option<&Sanitizer>, buf: &'static str, index: usize, warp: usize, lane: usize) {
    if let Some(s) = san {
        if s.is_enabled() {
            s.record(AccessKind::Write, buf, index, warp, lane);
        }
    }
}

/// Logs an atomic read-modify-write of `buf[index]` by `warp`/`lane`.
#[inline]
pub fn rmw(san: Option<&Sanitizer>, buf: &'static str, index: usize, warp: usize, lane: usize) {
    if let Some(s) = san {
        if s.is_enabled() {
            s.record(AccessKind::AtomicRmw, buf, index, warp, lane);
        }
    }
}

/// Opens a launch epoch (no-op without an enabled sanitizer).
#[inline]
pub fn begin(san: Option<&Sanitizer>, kernel: &str, nt: usize) {
    if let Some(s) = san {
        if s.is_enabled() {
            s.begin_launch(kernel, nt);
        }
    }
}

/// Closes the launch epoch and runs conflict detection. Returns the number
/// of new violations (0 without an enabled sanitizer).
#[inline]
pub fn barrier(san: Option<&Sanitizer>) -> usize {
    match san {
        Some(s) if s.is_enabled() => s.end_launch(),
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atomic::AtomicF64s;
    use crate::grid::launch;

    /// A deliberately racy kernel: every warp does a plain store to the
    /// same element of `y`. (The actual memory goes through an atomic so
    /// the *test* is well-defined; the shadow log records what the kernel
    /// *claims* to do, which is the racy plain store.)
    fn racy_demo(san: &Sanitizer) {
        let y = AtomicF64s::zeroed(64);
        begin(Some(san), "demo/racy-store", 32);
        launch(4, |w| {
            // rt = 33 for every warp: tile 1 at nt = 32.
            write(Some(san), "y", 33, w.warp_id, 0);
            y.add(33, 1.0);
        });
        barrier(Some(san));
    }

    // The launch-driven tests fan out over the rayon pool, which Miri
    // cannot interpret at useful speed; the pure record/report tests
    // below keep Miri coverage of the detector itself.
    #[test]
    #[cfg_attr(miri, ignore)]
    fn racy_demo_kernel_is_caught_with_a_correct_report() {
        let san = Sanitizer::new();
        racy_demo(&san);
        let v = san.violations();
        assert_eq!(v.len(), 1, "one violation per element per epoch");
        let v = &v[0];
        assert_eq!(v.kernel, "demo/racy-store");
        assert_eq!(v.buffer, "y");
        assert_eq!(v.index, 33);
        assert_eq!(v.tile, 1, "tile coordinate is index / nt");
        assert_eq!(v.kind, ConflictKind::WriteWrite);
        assert_ne!(v.first.warp, v.second.warp);
        assert_eq!(v.first.kind, AccessKind::Write);
        let msg = v.to_string();
        assert!(msg.contains("write-write"), "{msg}");
        assert!(msg.contains("demo/racy-store"), "{msg}");
        assert!(msg.contains("y[33]"), "{msg}");
        assert!(msg.contains("tile 1"), "{msg}");
    }

    #[test]
    #[cfg_attr(miri, ignore)]
    fn exclusive_chunk_writes_pass() {
        let san = Sanitizer::new();
        begin(Some(&san), "clean/chunked", 4);
        launch(8, |w| {
            for lane in 0..4 {
                write(Some(&san), "y", w.warp_id * 4 + lane, w.warp_id, lane);
            }
        });
        assert_eq!(barrier(Some(&san)), 0);
        assert_eq!(san.violation_count(), 0);
    }

    #[test]
    #[cfg_attr(miri, ignore)]
    fn atomics_mediate_concurrent_updates() {
        let san = Sanitizer::new();
        begin(Some(&san), "clean/atomic-or", 0);
        launch(16, |w| {
            rmw(Some(&san), "frontier", 7, w.warp_id, 0);
        });
        assert_eq!(barrier(Some(&san)), 0);
    }

    #[test]
    #[cfg_attr(miri, ignore)]
    fn shared_reads_pass() {
        let san = Sanitizer::new();
        begin(Some(&san), "clean/broadcast-read", 0);
        launch(16, |w| {
            read(Some(&san), "x", 0, w.warp_id, 0);
        });
        assert_eq!(barrier(Some(&san)), 0);
    }

    #[test]
    fn write_vs_read_from_another_warp_is_a_read_write_conflict() {
        let san = Sanitizer::new();
        begin(Some(&san), "demo/rw", 0);
        write(Some(&san), "buf", 5, 0, 0);
        read(Some(&san), "buf", 5, 1, 3);
        assert_eq!(barrier(Some(&san)), 1);
        let v = san.violations();
        assert_eq!(v[0].kind, ConflictKind::ReadWrite);
        assert_eq!(v[0].second.kind, AccessKind::Read);
        assert_eq!(v[0].second.lane, 3);
    }

    #[test]
    fn atomic_vs_plain_read_is_schedule_dependent() {
        let san = Sanitizer::new();
        begin(Some(&san), "demo/atomic-read", 0);
        rmw(Some(&san), "buf", 2, 0, 0);
        read(Some(&san), "buf", 2, 1, 0);
        assert_eq!(barrier(Some(&san)), 1);
        assert_eq!(san.violations()[0].kind, ConflictKind::ReadWrite);
    }

    #[test]
    fn same_warp_accesses_never_conflict() {
        let san = Sanitizer::new();
        begin(Some(&san), "clean/same-warp", 0);
        write(Some(&san), "buf", 9, 3, 0);
        write(Some(&san), "buf", 9, 3, 1);
        read(Some(&san), "buf", 9, 3, 2);
        assert_eq!(barrier(Some(&san)), 0);
    }

    #[test]
    fn epochs_are_independent() {
        let san = Sanitizer::new();
        // Epoch 0: warp 0 writes. Epoch 1: warp 1 writes the same element.
        // No intra-epoch conflict, so no violation.
        begin(Some(&san), "clean/two-epochs", 0);
        write(Some(&san), "buf", 1, 0, 0);
        assert_eq!(barrier(Some(&san)), 0);
        begin(Some(&san), "clean/two-epochs", 0);
        write(Some(&san), "buf", 1, 1, 0);
        assert_eq!(barrier(Some(&san)), 0);
        let s = san.summary();
        assert_eq!(s.launches, 2);
        assert_eq!(s.accesses, 2);
        assert_eq!(s.atomics, 0);
        assert_eq!(s.violations, 0);
    }

    #[test]
    fn summary_counts_atomic_claims() {
        let san = Sanitizer::new();
        begin(Some(&san), "clean/atomic-or", 0);
        rmw(Some(&san), "frontier", 3, 0, 0);
        rmw(Some(&san), "frontier", 3, 1, 0);
        read(Some(&san), "x", 0, 2, 0);
        assert_eq!(barrier(Some(&san)), 0);
        let s = san.summary();
        assert_eq!(s.accesses, 3);
        assert_eq!(s.atomics, 2);
    }

    #[test]
    #[cfg_attr(miri, ignore)]
    fn disabled_sanitizer_records_nothing() {
        let san = Sanitizer::new();
        san.set_enabled(false);
        begin(Some(&san), "demo/racy-store", 32);
        write(Some(&san), "y", 0, 0, 0);
        write(Some(&san), "y", 0, 1, 0);
        assert_eq!(barrier(Some(&san)), 0);
        assert!(san.is_empty());
        assert_eq!(san.summary(), SanitizerSummary::default());
        // Helpers tolerate None entirely.
        write(None, "y", 0, 0, 0);
        assert_eq!(barrier(None), 0);
        // Re-enabling works.
        san.set_enabled(true);
        racy_demo(&san);
        assert_eq!(san.violation_count(), 1);
    }

    #[test]
    #[cfg_attr(miri, ignore)]
    fn clear_resets_everything() {
        let san = Sanitizer::new();
        racy_demo(&san);
        assert_eq!(san.violation_count(), 1);
        san.clear();
        assert!(san.is_empty());
        assert_eq!(san.summary(), SanitizerSummary::default());
    }
}
