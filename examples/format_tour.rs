//! A tour of the storage structures: how the same matrix looks in CSR,
//! BSR, the numeric tiled format and the BFS bitmask format, and what each
//! costs in bytes (the storage story of §3.2).
//!
//! ```text
//! cargo run --release --example format_tour
//! ```

use tilespmspv::baselines::BsrMatrix;
use tilespmspv::core::tile::{BitTileMatrix, TileStats};
use tilespmspv::prelude::*;
use tilespmspv::sparse::suite::{by_name, SuiteScale};

fn main() {
    for name in ["cant", "in-2004", "roadNet-TX"] {
        let entry = by_name(name, SuiteScale::Small).expect("known suite matrix");
        let a = entry.matrix;
        println!(
            "=== {name} analog: {}x{}, {} nnz ===",
            a.nrows(),
            a.ncols(),
            a.nnz()
        );

        // Table 2's tile counts at the three sizes.
        let stats = TileStats::for_matrix(&a);
        for ts in TileSize::all() {
            println!(
                "  {:>6} tiles: {:>8} non-empty ({:.4}% of the grid)",
                ts.to_string(),
                stats.at(ts),
                100.0 * stats.occupancy(ts)
            );
        }

        // Storage: raw CSR vs the tiled format vs dense-block BSR.
        let csr_bytes = a.nnz() * (4 + 8) + (a.nrows() + 1) * 8;
        let tiled = TileMatrix::from_csr(&a, TileConfig::default()).unwrap();
        let bsr = BsrMatrix::from_csr(&a, 16).unwrap();
        println!("  CSR storage:        {csr_bytes:>10} bytes");
        println!(
            "  tiled storage:      {:>10} bytes ({} tiles + {} extracted entries)",
            tiled.storage_bytes(),
            tiled.num_tiles(),
            tiled.extra().nnz()
        );
        println!(
            "  BSR-16 storage:     {:>10} bytes ({:.1}x zero-fill — cuSPARSE's handicap)",
            bsr.storage_bytes(),
            bsr.stored_values() as f64 / a.nnz() as f64
        );

        // The BFS bitmask structure is pattern-only and much smaller.
        let nt = TileSize::for_bfs(a.nrows()).nt();
        let bit = BitTileMatrix::from_csr(&a, nt, 2).unwrap();
        println!(
            "  BFS bitmask ({nt}): {:>10} bytes (both orientations + extracted edges)",
            bit.storage_bytes()
        );

        // The packed one-byte intra-tile index of 16x16 tiles (§3.2.1).
        if let Some(packed) = tiled.packed16() {
            println!(
                "  packed u8 indices:  {:>10} bytes (one byte per tiled entry)",
                packed.len()
            );
        }
        println!();
    }
}
