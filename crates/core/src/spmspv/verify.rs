//! Symbolic footprints of the SpMSpV dispatch shapes, fed to the
//! plan-time verifier ([`tsv_simt::analyze`]).
//!
//! Each function here mirrors one kernel launch of
//! [`super::generic`] as a [`LaunchSummary`]: the buffers it touches, who
//! touches which indices, and the host-side merge that consumes its
//! partials. The summaries are pure functions of the plan (matrix
//! geometry, work list, [`BinPlan`]) — nothing here looks at values — so
//! the three obligations are discharged before the kernel runs. Buffer
//! names match the dynamic sanitizer's labels, which is what makes the
//! analyzer-vs-sanitizer differential cross-check meaningful.
//!
//! One deliberate modeling choice: the scatter kernels (column-push, the
//! COO pass, the buffered binned paths) charge *atomic claims* to the
//! sanitizer because that is what the GPU kernels of Algorithms 5–7 do —
//! but the substrate implements them as per-warp contribution buckets
//! merged in warp order after the barrier. The footprint models the
//! implementation: exclusive `contribs` slots plus a deterministic
//! [`MergeSpec`], which is why those plans *prove* instead of merely
//! being atomic-mediated.

use super::{Balance, KernelUsed, SpMSpVOptions, SpvFormat};
use tsv_simt::analyze::{
    self, chunked, shared, slots, worklisted, AccessMode, AtomicKind, LaunchSummary, MergeSpec,
    PlanError,
};
use tsv_simt::grid::BinPlan;
use tsv_simt::warp::WARP_SIZE;
use tsv_sparse::SparseError;

/// Converts a plan-construction failure into the engine's error type, so
/// the CLI reports it *before* launch instead of panicking mid-kernel.
pub(crate) fn plan_error(e: PlanError) -> SparseError {
    SparseError::Plan {
        what: e.to_string(),
    }
}

/// The plan label the report carries: kernel / balance / format.
pub(crate) fn plan_label(kernel: KernelUsed, opts: &SpMSpVOptions) -> String {
    let balance = match opts.balance {
        Balance::OneWarpPerRowTile => "direct",
        Balance::Binned { .. } => "binned",
    };
    let format = match opts.format {
        SpvFormat::TileCsr => "tilecsr",
        SpvFormat::Sell(_) => "sell",
    };
    format!("{}/{balance}/{format}", kernel.trace_label())
}

/// The direct row-tile kernel: one warp per row tile, each exclusively
/// owning its `nt`-wide output chunk; broadcast x-tile loads; idempotent
/// atomic ORs into the touched bitset.
pub(crate) fn row_direct_launch(
    m_tiles: usize,
    nt: usize,
    n_tiles: usize,
    touched_words: usize,
) -> Result<LaunchSummary, PlanError> {
    Ok(LaunchSummary {
        label: "spmspv/row-tile".to_string(),
        uses: vec![
            chunked("spmspv/row-tile", "y", AccessMode::Write, m_tiles * nt, nt)?,
            shared("x-tiles", AccessMode::Read, n_tiles),
            shared(
                "touched",
                AccessMode::Atomic(AtomicKind::IdempotentOr),
                touched_words,
            ),
        ],
        merge: None,
    })
}

/// The binned row-tile kernel's fast path: the plan degenerated to one
/// whole unit per warp, so the kernel writes `y` in place over the listed
/// row tiles — [`worklisted`] proves the chunks disjoint (and rejects the
/// unsorted/out-of-range lists `carve_worklist` would panic on).
pub(crate) fn row_binned_fast_launch(
    m_tiles: usize,
    nt: usize,
    n_tiles: usize,
    touched_words: usize,
    worklist: &[u32],
) -> Result<LaunchSummary, PlanError> {
    Ok(LaunchSummary {
        label: "spmspv/row-tile-binned".to_string(),
        uses: vec![
            worklisted(
                "spmspv/row-tile-binned",
                "y",
                AccessMode::Write,
                m_tiles * nt,
                nt,
                worklist,
            )?,
            shared("x-tiles", AccessMode::Read, n_tiles),
            shared(
                "touched",
                AccessMode::Atomic(AtomicKind::IdempotentOr),
                touched_words,
            ),
        ],
        merge: None,
    })
}

/// A buffered scatter launch (binned row/col, with packed or split
/// warps): every warp owns exactly its contribution slot, and the host
/// consumes the partials in the plan's `(unit, part)` order.
pub(crate) fn binned_buffered_launch(
    label: &'static str,
    plan: &BinPlan,
    worklist: &[u32],
    n_tiles: usize,
) -> LaunchSummary {
    LaunchSummary {
        label: label.to_string(),
        uses: vec![
            slots("contribs", AccessMode::Write, plan.n_warps()),
            shared("x-tiles", AccessMode::Read, n_tiles),
        ],
        merge: Some(MergeSpec::from_plan(plan, worklist)),
    }
}

/// The direct column-push kernel: one warp per active vector tile, each
/// buffering into its own slot; partials merged one bucket per unit in
/// warp order.
pub(crate) fn col_direct_launch(active_tiles: &[u32], n_tiles: usize) -> LaunchSummary {
    LaunchSummary {
        label: "spmspv/col-tile".to_string(),
        uses: vec![
            slots("contribs", AccessMode::Write, active_tiles.len()),
            shared("x-tiles", AccessMode::Read, n_tiles),
        ],
        merge: Some(MergeSpec::one_bucket_per_unit(active_tiles)),
    }
}

/// The hybrid COO pass: one warp per `WARP_SIZE`-wide chunk of x's
/// nonzeros, buffering into its own slot; warp-order merge.
pub(crate) fn coo_launch(x_nnz: usize, x_len: usize) -> LaunchSummary {
    let n_warps = x_nnz.div_ceil(WARP_SIZE);
    let warps: Vec<u32> = (0..n_warps as u32).collect();
    LaunchSummary {
        label: "spmspv/coo-pass".to_string(),
        uses: vec![
            slots("contribs", AccessMode::Write, n_warps),
            shared("x", AccessMode::Read, x_len),
        ],
        merge: Some(MergeSpec::one_bucket_per_unit(&warps)),
    }
}

/// The batched plan label: balance / format / batch width.
pub(crate) fn batched_plan_label(b: usize, opts: &SpMSpVOptions) -> String {
    let balance = match opts.balance {
        Balance::OneWarpPerRowTile => "direct",
        Balance::Binned { .. } => "binned",
    };
    let format = match opts.format {
        SpvFormat::TileCsr => "tilecsr",
        SpvFormat::Sell(_) => "sell",
    };
    format!("spmspv/row-tile-batched/{balance}/{format}/b{b}")
}

/// The batched direct row-tile kernel: one warp per row tile, each
/// exclusively owning its `nt * B` lane-major slab. Write-disjointness
/// across query lanes is what this chunked footprint proves — every
/// lane's slots live inside the owning warp's chunk, so no lane can
/// scribble on another query's accumulator.
pub(crate) fn batched_row_direct_launch(
    m_tiles: usize,
    nt: usize,
    b: usize,
    n_tiles: usize,
    touched_words: usize,
) -> Result<LaunchSummary, PlanError> {
    Ok(LaunchSummary {
        label: "spmspv/row-tile-batched".to_string(),
        uses: vec![
            chunked(
                "spmspv/row-tile-batched",
                "y",
                AccessMode::Write,
                m_tiles * nt * b,
                nt * b,
            )?,
            shared("x-tiles", AccessMode::Read, n_tiles),
            shared(
                "touched",
                AccessMode::Atomic(AtomicKind::IdempotentOr),
                touched_words,
            ),
        ],
        merge: None,
    })
}

/// The batched binned kernel's fast path: in-place slab writes over the
/// union work list, chunk width `nt * B`.
pub(crate) fn batched_row_binned_fast_launch(
    m_tiles: usize,
    nt: usize,
    b: usize,
    n_tiles: usize,
    touched_words: usize,
    worklist: &[u32],
) -> Result<LaunchSummary, PlanError> {
    Ok(LaunchSummary {
        label: "spmspv/row-tile-batched-binned".to_string(),
        uses: vec![
            worklisted(
                "spmspv/row-tile-batched-binned",
                "y",
                AccessMode::Write,
                m_tiles * nt * b,
                nt * b,
                worklist,
            )?,
            shared("x-tiles", AccessMode::Read, n_tiles),
            shared(
                "touched",
                AccessMode::Atomic(AtomicKind::IdempotentOr),
                touched_words,
            ),
        ],
        merge: None,
    })
}

/// One query lane's COO pass in a batched multiply — the same buffered
/// shape as [`coo_launch`] under the batched label (lanes land on
/// disjoint slab slots, so per-lane launches compose race-free).
pub(crate) fn batched_coo_launch(x_nnz: usize, x_len: usize) -> LaunchSummary {
    let n_warps = x_nnz.div_ceil(WARP_SIZE);
    let warps: Vec<u32> = (0..n_warps as u32).collect();
    LaunchSummary {
        label: "spmspv/coo-batched".to_string(),
        uses: vec![
            slots("contribs", AccessMode::Write, n_warps),
            shared("x", AccessMode::Read, x_len),
        ],
        merge: Some(MergeSpec::one_bucket_per_unit(&warps)),
    }
}

/// Discharges the three obligations over the phase's launch sequence,
/// counting verdicts on the metrics registry.
pub(crate) fn run(plan: &str, launches: &[LaunchSummary]) -> analyze::PlanReport {
    analyze::verify(plan, launches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsv_simt::analyze::Verdict;

    #[test]
    fn every_direct_shape_proves() {
        let launches = vec![
            row_direct_launch(8, 16, 8, 1).unwrap(),
            coo_launch(100, 500),
        ];
        let r = run("spmspv/row-tile/direct/tilecsr", &launches);
        assert!(r.is_proved(), "{r}");

        let r = run(
            "spmspv/col-tile/direct/tilecsr",
            &[col_direct_launch(&[0, 3, 7], 8)],
        );
        assert!(r.is_proved(), "{r}");
    }

    #[test]
    fn binned_shapes_prove_for_real_plans() {
        let worklist = [0u32, 2, 5, 6];
        let mut plan = BinPlan::new();
        plan.rebuild(&worklist, |u| if u == 5 { 100 } else { 4 }, 16, 8);
        let r = run(
            "spmspv/row-tile/binned/tilecsr",
            &[binned_buffered_launch(
                "spmspv/row-tile-binned",
                &plan,
                &worklist,
                8,
            )],
        );
        assert!(r.is_proved(), "{r}");

        let fast = row_binned_fast_launch(8, 16, 8, 1, &worklist).unwrap();
        let r = run("spmspv/row-tile/binned/tilecsr", &[fast]);
        assert!(r.is_proved(), "{r}");
    }

    #[test]
    fn batched_shapes_prove_lane_disjointness() {
        let launches = vec![
            batched_row_direct_launch(8, 16, 8, 8, 1).unwrap(),
            batched_coo_launch(100, 500),
        ];
        let r = run("spmspv/row-tile-batched/direct/tilecsr/b8", &launches);
        assert!(r.is_proved(), "{r}");

        let worklist = [0u32, 2, 5];
        let fast = batched_row_binned_fast_launch(8, 16, 4, 8, 1, &worklist).unwrap();
        let r = run("spmspv/row-tile-batched/binned/tilecsr/b4", &[fast]);
        assert!(r.is_proved(), "{r}");

        let opts = SpMSpVOptions::default();
        assert_eq!(
            batched_plan_label(32, &opts),
            "spmspv/row-tile-batched/direct/tilecsr/b32"
        );
    }

    #[test]
    fn bad_geometry_is_an_error_not_a_panic() {
        // 25 output slots with nt = 10: the condition launch_over_chunks
        // would assert at run time, surfaced as a plan error.
        let err = chunked("spmspv/row-tile", "y", AccessMode::Write, 25, 10).unwrap_err();
        let e = plan_error(err);
        let msg = e.to_string();
        assert!(msg.contains("static verifier"), "{msg}");
        assert!(msg.contains("not a multiple"), "{msg}");

        let err = row_binned_fast_launch(8, 16, 8, 1, &[3, 1]).unwrap_err();
        assert!(plan_error(err).to_string().contains("strictly increasing"));
    }

    #[test]
    fn labels_name_kernel_balance_and_format() {
        let opts = SpMSpVOptions {
            balance: Balance::binned(),
            ..Default::default()
        };
        assert_eq!(
            plan_label(KernelUsed::RowTile, &opts),
            "spmspv/row-tile/binned/tilecsr"
        );
        let opts = SpMSpVOptions::default();
        assert_eq!(
            plan_label(KernelUsed::ColTile, &opts),
            "spmspv/col-tile/direct/tilecsr"
        );
    }

    #[test]
    fn verdict_labels_round_trip() {
        assert_eq!(Verdict::Proved.label(), "proved");
        assert_eq!(Verdict::NeedsAtomics.label(), "needs-atomics");
    }
}
