//! Tile occupancy statistics (the numbers reported in Table 2).

use super::layout::{tiles_for, TileSize};
use rayon::prelude::*;
use tsv_sparse::CsrMatrix;

/// Counts the non-empty `nt × nt` tiles of a matrix without building the
/// tiled structure.
pub fn tile_count<T: Copy + Sync>(a: &CsrMatrix<T>, nt: usize) -> usize {
    assert!(nt > 0);
    let m_tiles = tiles_for(a.nrows(), nt);
    (0..m_tiles)
        .into_par_iter()
        .map(|rt| {
            let row_start = rt * nt;
            let row_end = (row_start + nt).min(a.nrows());
            let mut cts: Vec<u32> = Vec::new();
            for r in row_start..row_end {
                let (cols, _) = a.row(r);
                for &c in cols {
                    cts.push(c / nt as u32);
                }
            }
            cts.sort_unstable();
            cts.dedup();
            cts.len()
        })
        .sum()
}

/// The per-matrix statistics of Table 2: size, nonzeros, and tile counts at
/// the three supported tile sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileStats {
    /// Number of rows.
    pub nrows: usize,
    /// Number of columns.
    pub ncols: usize,
    /// Number of nonzeros.
    pub nnz: usize,
    /// Non-empty 16×16 tiles.
    pub tiles16: usize,
    /// Non-empty 32×32 tiles.
    pub tiles32: usize,
    /// Non-empty 64×64 tiles.
    pub tiles64: usize,
}

impl TileStats {
    /// Computes all three tile counts for a matrix.
    pub fn for_matrix<T: Copy + Sync>(a: &CsrMatrix<T>) -> Self {
        Self {
            nrows: a.nrows(),
            ncols: a.ncols(),
            nnz: a.nnz(),
            tiles16: tile_count(a, 16),
            tiles32: tile_count(a, 32),
            tiles64: tile_count(a, 64),
        }
    }

    /// Tile count at a given size.
    pub fn at(&self, size: TileSize) -> usize {
        match size {
            TileSize::S16 => self.tiles16,
            TileSize::S32 => self.tiles32,
            TileSize::S64 => self.tiles64,
        }
    }

    /// Fraction of the tile grid that is non-empty at `size` — the quantity
    /// the paper's per-matrix analysis cites (e.g. trans5's 0.00018%).
    pub fn occupancy(&self, size: TileSize) -> f64 {
        let nt = size.nt();
        let grid = tiles_for(self.nrows, nt) * tiles_for(self.ncols, nt);
        if grid == 0 {
            0.0
        } else {
            self.at(size) as f64 / grid as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsv_sparse::gen::{banded, identity, uniform_random};

    #[test]
    fn identity_tile_counts() {
        let a = identity(64).to_csr();
        // The diagonal crosses each diagonal tile exactly once.
        assert_eq!(tile_count(&a, 16), 4);
        assert_eq!(tile_count(&a, 32), 2);
        assert_eq!(tile_count(&a, 64), 1);
    }

    #[test]
    fn larger_tiles_never_increase_count() {
        let a = uniform_random(300, 300, 2000, 4).to_csr();
        let s = TileStats::for_matrix(&a);
        assert!(s.tiles16 >= s.tiles32);
        assert!(s.tiles32 >= s.tiles64);
        assert!(s.tiles64 >= 1);
    }

    #[test]
    fn dense_band_fills_diagonal_tiles() {
        let a = banded(64, 16, 1.0, 1).to_csr();
        let c = tile_count(&a, 16);
        // Band of half-width 16 touches the diagonal and both adjacent
        // tile diagonals: between 4 and 12 tiles on a 4x4 grid.
        assert!((4..=12).contains(&c), "got {c}");
    }

    #[test]
    fn occupancy_is_a_fraction() {
        let a = uniform_random(200, 200, 500, 1).to_csr();
        let s = TileStats::for_matrix(&a);
        for ts in TileSize::all() {
            let o = s.occupancy(ts);
            assert!((0.0..=1.0).contains(&o));
        }
    }

    #[test]
    fn stats_record_shape() {
        let a = uniform_random(100, 150, 300, 2).to_csr();
        let s = TileStats::for_matrix(&a);
        assert_eq!(s.nrows, 100);
        assert_eq!(s.ncols, 150);
        assert_eq!(s.nnz, a.nnz());
        assert_eq!(s.at(TileSize::S16), s.tiles16);
    }

    #[test]
    fn tile_count_matches_brute_force() {
        let a = uniform_random(128, 128, 700, 9).to_csr();
        for nt in [16usize, 32, 64] {
            let mut set = std::collections::HashSet::new();
            for (r, c, _) in a.iter() {
                set.insert((r / nt, c / nt));
            }
            assert_eq!(tile_count(&a, nt), set.len(), "nt={nt}");
        }
    }
}
