//! Warp context and warp-level primitives.
//!
//! A CUDA warp executes 32 lanes in lock-step; the paper's kernels use this
//! for intra-tile parallelism ("two threads work for each row" of a 16×16
//! tile) and for register shuffles in the reduction of Algorithm 4. On the
//! CPU a warp's lanes run sequentially inside one task, which preserves the
//! lock-step semantics exactly; the primitives below mirror the CUDA
//! intrinsics the kernels call and count the work they do.

use crate::stats::KernelStats;

/// Lanes per warp, as on all CUDA architectures.
pub const WARP_SIZE: usize = 32;

/// Execution context handed to a kernel body, one per warp.
#[derive(Debug)]
pub struct WarpCtx {
    /// Linear warp index within the launch grid.
    pub warp_id: usize,
    /// Local work counters, summed across the grid after the launch.
    pub stats: KernelStats,
}

impl WarpCtx {
    /// Creates the context for warp `warp_id`.
    pub fn new(warp_id: usize) -> Self {
        Self {
            warp_id,
            stats: KernelStats {
                warps: 1,
                ..KernelStats::default()
            },
        }
    }

    /// Runs `f` once per lane, in lane order — the lock-step body of a
    /// `for ti = 0 to 31 in parallel` loop from the paper's pseudocode.
    #[inline]
    pub fn for_each_lane<F: FnMut(usize)>(&mut self, mut f: F) {
        for lane in 0..WARP_SIZE {
            f(lane);
        }
        self.stats.lane_steps += WARP_SIZE as u64;
    }

    /// `__shfl_down_sync`: each lane receives the value of `lane + delta`
    /// (unchanged for lanes whose source would fall off the warp).
    #[inline]
    pub fn shfl_down<T: Copy>(&mut self, vals: &mut [T; WARP_SIZE], delta: usize) {
        for lane in 0..WARP_SIZE {
            if lane + delta < WARP_SIZE {
                vals[lane] = vals[lane + delta];
            }
        }
        self.stats.lane_steps += WARP_SIZE as u64;
    }

    /// Butterfly sum over the warp via repeated `shfl_down`, as in lines
    /// 12-13 of Algorithm 4. Returns the total (the value lane 0 would
    /// hold).
    #[inline]
    pub fn reduce_sum(&mut self, mut vals: [f64; WARP_SIZE]) -> f64 {
        let mut delta = WARP_SIZE / 2;
        while delta > 0 {
            for lane in 0..delta {
                vals[lane] += vals[lane + delta];
            }
            self.stats.flops += delta as u64;
            delta /= 2;
        }
        self.stats.lane_steps += WARP_SIZE as u64;
        vals[0]
    }

    /// `__ballot_sync`: one bit per lane predicate.
    #[inline]
    pub fn ballot(&mut self, preds: &[bool; WARP_SIZE]) -> u32 {
        let mut mask = 0u32;
        for (lane, &p) in preds.iter().enumerate() {
            if p {
                mask |= 1 << lane;
            }
        }
        self.stats.lane_steps += WARP_SIZE as u64;
        mask
    }

    /// `__any_sync`: true when any lane predicate holds.
    #[inline]
    pub fn any(&mut self, preds: &[bool; WARP_SIZE]) -> bool {
        self.ballot(preds) != 0
    }

    /// Splits a half-open range among the 32 lanes in a strided pattern
    /// (lane `l` gets `start+l`, `start+l+32`, ...), the coalesced access
    /// idiom of all the paper's kernels. Returns an iterator of
    /// `(lane, index)` pairs in execution order.
    pub fn strided(&self, start: usize, end: usize) -> impl Iterator<Item = (usize, usize)> {
        (start..end).map(move |i| ((i - start) % WARP_SIZE, i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_each_lane_visits_all_lanes_in_order() {
        let mut w = WarpCtx::new(0);
        let mut seen = Vec::new();
        w.for_each_lane(|l| seen.push(l));
        assert_eq!(seen, (0..32).collect::<Vec<_>>());
        assert_eq!(w.stats.lane_steps, 32);
    }

    #[test]
    fn shfl_down_shifts_values() {
        let mut w = WarpCtx::new(0);
        let mut v: [u32; 32] = std::array::from_fn(|i| i as u32);
        w.shfl_down(&mut v, 1);
        assert_eq!(v[0], 1);
        assert_eq!(v[30], 31);
        // Last lane keeps its value (CUDA semantics).
        assert_eq!(v[31], 31);
    }

    #[test]
    fn reduce_sum_totals_the_warp() {
        let mut w = WarpCtx::new(3);
        let v: [f64; 32] = std::array::from_fn(|i| (i + 1) as f64);
        let total = w.reduce_sum(v);
        assert_eq!(total, f64::from(32 * 33 / 2));
        assert!(w.stats.flops > 0);
    }

    #[test]
    fn ballot_and_any() {
        let mut w = WarpCtx::new(0);
        let mut p = [false; 32];
        assert!(!w.any(&p));
        p[0] = true;
        p[31] = true;
        let mask = w.ballot(&p);
        assert_eq!(mask, 1 | (1 << 31));
        assert!(w.any(&p));
    }

    #[test]
    fn strided_covers_range_once() {
        let w = WarpCtx::new(0);
        let hits: Vec<_> = w.strided(10, 80).collect();
        assert_eq!(hits.len(), 70);
        assert_eq!(hits[0], (0, 10));
        assert_eq!(hits[32], (0, 42));
        assert_eq!(hits[33], (1, 43));
    }

    #[test]
    fn new_warp_counts_itself() {
        let w = WarpCtx::new(7);
        assert_eq!(w.warp_id, 7);
        assert_eq!(w.stats.warps, 1);
    }
}
