//! Work-balanced dispatch: the frontier-compacted, nnz-binned scheduler
//! must be a pure performance transform — bit-identical results under a
//! fixed kernel, exact agreement for order-independent semirings, lower
//! modeled device time and per-warp imbalance on skewed workloads.

use tilespmspv::core::exec::SpMSpVEngine;
use tilespmspv::core::semiring::{spmspv_semiring, MinPlus, OrAnd};
use tilespmspv::core::spmspv::{tile_spmspv_with, Balance, KernelChoice, SpMSpVOptions};
use tilespmspv::prelude::*;
use tilespmspv::simt::device::RTX_3090;
use tilespmspv::simt::model::kernel_time;
use tilespmspv::sparse::gen::{
    banded, geometric_graph, grid2d, random_sparse_vector, rmat, uniform_random, RmatConfig,
};
use tilespmspv::sparse::reference::spmspv_row;
use tilespmspv::sparse::CsrMatrix;

fn bits(v: &SparseVector<f64>) -> Vec<u64> {
    v.values().iter().map(|x| x.to_bits()).collect()
}

/// Balance settings that exercise every plan shape: the default packing,
/// aggressive splitting of everything, and a mixed pack-and-split config.
fn balance_zoo() -> Vec<Balance> {
    vec![
        Balance::binned(),
        Balance::Binned {
            target_nnz: 1,
            max_split: 4,
        },
        Balance::Binned {
            target_nnz: 8,
            max_split: 2,
        },
        Balance::Binned {
            target_nnz: 10_000_000,
            max_split: 32,
        },
    ]
}

/// Under a fixed kernel choice, every binned configuration reproduces the
/// one-warp-per-row-tile result bit for bit (PlusTimes over f64 — the
/// strictest equality the determinism contract promises).
#[test]
fn binned_is_bitwise_identical_under_fixed_kernels() {
    let matrices: Vec<(&str, CsrMatrix<f64>)> = vec![
        ("banded", banded(300, 9, 0.7, 1).to_csr()),
        ("uniform", uniform_random(257, 257, 3000, 2).to_csr()),
        ("grid", grid2d(18, 17).to_csr()),
        ("geometric", geometric_graph(400, 5.0, 3).to_csr()),
        ("rmat", rmat(RmatConfig::new(8, 6), 4).to_csr()),
        ("rect-wide", uniform_random(100, 500, 2500, 5).to_csr()),
        ("empty", CsrMatrix::zeros(64, 64)),
    ];
    for (name, a) in &matrices {
        for ts in TileSize::all() {
            let cfg = TileConfig {
                tile_size: ts,
                ..Default::default()
            };
            let tiled = TileMatrix::from_csr(a, cfg).unwrap();
            for sparsity in [0.0, 0.004, 0.06, 0.4] {
                let x = random_sparse_vector(a.ncols(), sparsity, 7);
                let reference = spmspv_row(a, &x).unwrap();
                for kernel in [KernelChoice::RowTile, KernelChoice::ColTile] {
                    let direct = SpMSpVOptions {
                        kernel,
                        ..Default::default()
                    };
                    let (y_direct, r_direct) = tile_spmspv_with(&tiled, &x, direct).unwrap();
                    assert!(
                        r_direct.dispatch.is_none(),
                        "direct dispatch must not build a plan"
                    );
                    for balance in balance_zoo() {
                        let opts = SpMSpVOptions {
                            kernel,
                            balance,
                            ..Default::default()
                        };
                        let (y, r) = tile_spmspv_with(&tiled, &x, opts).unwrap();
                        assert_eq!(
                            y.indices(),
                            y_direct.indices(),
                            "{name} {ts} @{sparsity} {kernel:?} {balance:?}: pattern"
                        );
                        assert_eq!(
                            bits(&y),
                            bits(&y_direct),
                            "{name} {ts} @{sparsity} {kernel:?} {balance:?}: values"
                        );
                        assert!(
                            y.max_abs_diff(&reference) < 1e-9,
                            "{name} {ts} @{sparsity} {kernel:?} {balance:?}: reference"
                        );
                        let d = r.dispatch.expect("binned run must report its plan");
                        assert!(
                            d.units == 0 || d.warps >= 1,
                            "a non-empty work list must launch warps"
                        );
                        assert!(
                            u64::from(d.warps) <= r.stats.warps,
                            "plan warps exceed the launch's warp count"
                        );
                    }
                }
                // Auto may legitimately pick a different kernel per balance
                // mode (its Binned predicate is tile-level); results must
                // still agree with the serial reference.
                for balance in [Balance::OneWarpPerRowTile, Balance::binned()] {
                    let opts = SpMSpVOptions {
                        kernel: KernelChoice::Auto,
                        balance,
                        ..Default::default()
                    };
                    let (y, _) = tile_spmspv_with(&tiled, &x, opts).unwrap();
                    assert!(
                        y.max_abs_diff(&reference) < 1e-9,
                        "{name} {ts} @{sparsity} Auto/{balance:?}"
                    );
                }
            }
        }
    }
}

/// Order-independent semirings agree exactly across every balance mode and
/// kernel choice.
#[test]
fn min_plus_and_or_and_agree_across_balance_modes() {
    let a = uniform_random(400, 400, 5000, 9).to_csr();
    let oracle_csc = a.to_csc();
    for seed in 0..3u64 {
        let x = random_sparse_vector(400, [0.003, 0.05, 0.3][seed as usize], seed);
        let expect = spmspv_semiring::<MinPlus>(&oracle_csc, &x).unwrap();
        for kernel in [
            KernelChoice::RowTile,
            KernelChoice::ColTile,
            KernelChoice::Auto,
        ] {
            for balance in [Balance::OneWarpPerRowTile, Balance::binned()] {
                let opts = SpMSpVOptions {
                    kernel,
                    balance,
                    ..Default::default()
                };
                let mut engine =
                    SpMSpVEngine::<MinPlus>::from_csr_with(&a, TileConfig::default(), opts)
                        .unwrap();
                let (y, _) = engine.multiply(&x).unwrap();
                assert_eq!(y, expect, "MinPlus {kernel:?} {balance:?} seed {seed}");
            }
        }
    }

    // Boolean pattern of a graph: one OrAnd step is the neighbor set.
    let g = grid2d(20, 15).to_csr().without_diagonal();
    let pattern = CsrMatrix::from_parts(
        g.nrows(),
        g.ncols(),
        g.row_ptr().to_vec(),
        g.col_idx().to_vec(),
        vec![true; g.nnz()],
    )
    .unwrap();
    let bool_csc = pattern.to_csc();
    for seed in 0..3u64 {
        let picks: Vec<(u32, bool)> = (0..5)
            .map(|k| (((seed * 83 + k * 57) % g.nrows() as u64) as u32, true))
            .collect();
        let x = SparseVector::from_entries(g.nrows(), {
            let mut p = picks;
            p.sort_unstable();
            p.dedup();
            p
        })
        .unwrap();
        let expect = spmspv_semiring::<OrAnd>(&bool_csc, &x).unwrap();
        for kernel in [
            KernelChoice::RowTile,
            KernelChoice::ColTile,
            KernelChoice::Auto,
        ] {
            for balance in [Balance::OneWarpPerRowTile, Balance::binned()] {
                let opts = SpMSpVOptions {
                    kernel,
                    balance,
                    ..Default::default()
                };
                let mut engine =
                    SpMSpVEngine::<OrAnd>::from_csr_with(&pattern, TileConfig::default(), opts)
                        .unwrap();
                let (y, _) = engine.multiply(&x).unwrap();
                assert_eq!(
                    y.indices(),
                    expect.indices(),
                    "OrAnd {kernel:?} {balance:?} seed {seed}"
                );
            }
        }
    }
}

/// The headline win: on a skewed R-MAT workload, binned dispatch reduces
/// modeled device time by at least 1.3x at bit-identical output, and the
/// per-warp work imbalance (max/mean) drops versus one warp per work unit.
#[test]
fn binned_beats_direct_on_skewed_rmat() {
    let a = rmat(RmatConfig::new(12, 16), 11).to_csr();
    let tiled = TileMatrix::from_csr(&a, TileConfig::default()).unwrap();
    let x = random_sparse_vector(a.ncols(), 0.3, 5);

    let direct = SpMSpVOptions {
        kernel: KernelChoice::RowTile,
        ..Default::default()
    };
    let (y_direct, r_direct) = tile_spmspv_with(&tiled, &x, direct).unwrap();

    let binned = SpMSpVOptions {
        kernel: KernelChoice::RowTile,
        balance: Balance::binned(),
        ..Default::default()
    };
    let (y_binned, r_binned) = tile_spmspv_with(&tiled, &x, binned).unwrap();

    assert_eq!(y_binned.indices(), y_direct.indices());
    assert_eq!(bits(&y_binned), bits(&y_direct), "must be bit-identical");

    let t_direct = kernel_time(&r_direct.stats, &RTX_3090);
    let t_binned = kernel_time(&r_binned.stats, &RTX_3090);
    assert!(
        t_direct >= 1.3 * t_binned,
        "binned must model >=1.3x faster: direct {:.3}us vs binned {:.3}us",
        t_direct * 1e6,
        t_binned * 1e6,
    );

    // Imbalance: compare against the same compacted work list with one warp
    // per unit (target 1, no splitting) — the per-warp work distribution the
    // direct kernel would see over its active row tiles.
    let one_per_unit = SpMSpVOptions {
        kernel: KernelChoice::RowTile,
        balance: Balance::Binned {
            target_nnz: 1,
            max_split: 1,
        },
        ..Default::default()
    };
    let (_, r_unit) = tile_spmspv_with(&tiled, &x, one_per_unit).unwrap();
    let d_binned = r_binned.dispatch.expect("binned plan");
    let d_unit = r_unit.dispatch.expect("one-per-unit plan");
    assert_eq!(d_unit.units, d_unit.warps, "target 1 must not pack");
    assert!(
        d_binned.max_warp_work <= d_unit.max_warp_work,
        "splitting must not grow the heaviest warp: {} vs {}",
        d_binned.max_warp_work,
        d_unit.max_warp_work,
    );
    assert!(
        d_binned.imbalance() < d_unit.imbalance(),
        "binned imbalance {:.2} must drop below one-warp-per-unit {:.2}",
        d_binned.imbalance(),
        d_unit.imbalance(),
    );
}

/// The default options are the pre-existing behavior: no plan is built and
/// the balance knob defaults to one warp per row tile.
#[test]
fn default_options_stay_direct() {
    assert_eq!(SpMSpVOptions::default().balance, Balance::OneWarpPerRowTile);
    let a = banded(200, 5, 0.8, 1).to_csr();
    let tiled = TileMatrix::from_csr(&a, TileConfig::default()).unwrap();
    let x = random_sparse_vector(200, 0.1, 3);
    let (_, r) = tile_spmspv_with(&tiled, &x, SpMSpVOptions::default()).unwrap();
    assert!(r.dispatch.is_none());
}
