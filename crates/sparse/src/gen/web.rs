//! Host-structured web/social graph generator.
//!
//! Crawl-ordered web matrices (`in-2004` and kin) assign consecutive ids to
//! pages of the same host, and most links stay within a host. The result is
//! dense diagonal blocks — the real `in-2004` averages ~74 nonzeros per
//! 64×64 tile — plus a scattered cross-host remainder with a skewed
//! popularity distribution. Plain R-MAT reproduces the degree skew but not
//! the blocks (~7 per tile), which misrepresents how well such graphs tile.
//! Social networks have the same shape via communities.

use crate::coo::CooMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a symmetric host-structured graph.
///
/// * `n` — vertex count;
/// * `avg_degree` — mean (undirected) degree;
/// * `intra_frac` — fraction of edges that stay within the host
///   (in-2004-like crawls: ~0.8);
/// * `host_mean` — mean host size; actual sizes vary ×(0.5..1.5).
pub fn webgraph(
    n: usize,
    avg_degree: f64,
    intra_frac: f64,
    host_mean: usize,
    seed: u64,
) -> CooMatrix<f64> {
    assert!(n > 0 && host_mean > 0);
    assert!((0.0..=1.0).contains(&intra_frac));
    let mut rng = StdRng::seed_from_u64(seed);

    // Partition [0, n) into hosts of varying size.
    let mut host_starts = vec![0usize];
    while *host_starts.last().unwrap() < n {
        let size = (host_mean / 2 + rng.random_range(0..host_mean.max(1))).max(1);
        host_starts.push((host_starts.last().unwrap() + size).min(n));
    }
    let n_hosts = host_starts.len() - 1;
    let host_of = |v: usize, starts: &[usize]| -> usize {
        match starts.binary_search(&v) {
            Ok(i) => i.min(n_hosts - 1),
            Err(i) => i - 1,
        }
    };

    // Zipf-ish host popularity for cross-host targets: pick a host by
    // squaring a uniform (heavier mass on low-index "popular" hosts).
    let edges = (n as f64 * avg_degree / 2.0) as usize;
    let mut m = CooMatrix::with_capacity(n, n, edges * 2);
    for _ in 0..edges {
        let u = rng.random_range(0..n);
        let h = host_of(u, &host_starts);
        let v = if rng.random::<f64>() < intra_frac {
            // Within-host link.
            let (s, e) = (host_starts[h], host_starts[h + 1]);
            rng.random_range(s..e)
        } else {
            // Cross-host link to a popular host.
            let t = (rng.random::<f64>() * rng.random::<f64>() * n_hosts as f64) as usize;
            let t = t.min(n_hosts - 1);
            let (s, e) = (host_starts[t], host_starts[t + 1]);
            rng.random_range(s..e)
        };
        if u == v {
            continue;
        }
        m.push(u, v, 1.0);
        m.push(v, u, 1.0);
    }
    m.sum_duplicates();
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_degree() {
        let m = webgraph(5000, 12.0, 0.8, 50, 3);
        let avg = m.nnz() as f64 / 5000.0;
        assert!((6.0..=14.0).contains(&avg), "avg degree {avg}");
        assert_eq!(m.nrows(), 5000);
    }

    #[test]
    fn pattern_is_symmetric_without_self_loops() {
        let m = webgraph(1000, 8.0, 0.8, 40, 5).to_csr();
        assert!(m.is_symmetric());
        for v in 0..1000 {
            assert!(m.get(v, v).is_none());
        }
    }

    #[test]
    fn host_blocks_create_tile_locality() {
        // Most edges must be short-range (within a host's id span).
        let m = webgraph(8000, 12.0, 0.8, 50, 7);
        let near = m.iter().filter(|&(r, c, _)| r.abs_diff(c) < 100).count();
        assert!(
            near * 3 > m.nnz() * 2,
            "expected >2/3 of edges host-local: {near}/{}",
            m.nnz()
        );
    }

    #[test]
    fn cross_host_targets_are_skewed() {
        let m = webgraph(8000, 12.0, 0.5, 50, 9).to_csr();
        // Popular (low-id) hosts should collect far more links than the
        // median vertex.
        let max_deg = (0..8000).map(|v| m.row_nnz(v)).max().unwrap();
        let mut degs: Vec<usize> = (0..8000).map(|v| m.row_nnz(v)).collect();
        degs.sort_unstable();
        assert!(max_deg > degs[4000] * 3, "degree skew missing");
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(
            webgraph(500, 8.0, 0.8, 30, 1),
            webgraph(500, 8.0, 0.8, 30, 1)
        );
        assert_ne!(
            webgraph(500, 8.0, 0.8, 30, 1),
            webgraph(500, 8.0, 0.8, 30, 2)
        );
    }
}
