//! Differential conformance suite: every tiled SpMSpV kernel (forced
//! row-tile, forced col-tile, with and without the COO side pass) × every
//! semiring × both balance modes × both execution backends (modeled SIMT
//! grid and native rayon pool), checked against a naive dense oracle
//! that is too simple to be wrong.
//!
//! The zoo leans on the shapes that break tiled code: orders straddling
//! the tile edge (31/32/33, 63/64/65, 127/128/129), matrices whose tiles
//! are almost all empty, single-entry matrices, empty matrices, and the
//! empty input vector.

use tilespmspv::core::exec::SpMSpVEngine;
use tilespmspv::core::semiring::{MinPlus, OrAnd, PlusTimes, Semiring};
use tilespmspv::core::spmspv::{Balance, KernelChoice, SpMSpVOptions, SpvFormat};
use tilespmspv::core::tile::{SellConfig, TileConfig, TileMatrix};
use tilespmspv::simt::ExecBackend;
use tilespmspv::sparse::gen::{
    banded, geometric_graph, grid2d, random_sparse_vector, rmat, uniform_random, RmatConfig,
};
use tilespmspv::sparse::{CooMatrix, CsrMatrix, SparseVector};

/// The substrates every conformance case runs on: the modeled SIMT grid
/// and the native rayon backend. `TSV_NATIVE_THREADS` picks the native
/// pool size (CI runs the suite at 1 and at N), defaulting to 2 so a
/// plain `cargo test` still exercises real cross-thread merging.
fn backends() -> Vec<ExecBackend> {
    let threads = std::env::var("TSV_NATIVE_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&t| t > 0)
        .unwrap_or(2);
    vec![ExecBackend::model(), ExecBackend::native(Some(threads))]
}

/// The tile storage formats every conformance case runs with. `TSV_FORMAT`
/// pins one (`tilecsr`, `sell`, `sell:C:sigma`, … — CI runs the suite once
/// per format); unset runs both the tile-CSR baseline and SELL slabs with
/// a small σ-window so sorting, padding and fallback all engage on the
/// zoo's tile shapes.
fn formats() -> Vec<SpvFormat> {
    match std::env::var("TSV_FORMAT") {
        Ok(spec) => vec![SpvFormat::parse(&spec).expect("TSV_FORMAT must parse")],
        Err(_) => vec![
            SpvFormat::TileCsr,
            SpvFormat::Sell(SellConfig {
                c: 8,
                sigma: 16,
                ..SellConfig::default()
            }),
        ],
    }
}

/// The naive oracle: a dense gather over the stored entries. `None`
/// marks rows no product ever touched — the support the compacted
/// output must reproduce exactly.
fn dense_oracle<S: Semiring>(a: &CsrMatrix<S::T>, x: &SparseVector<S::T>) -> Vec<Option<S::T>> {
    let mut xd: Vec<Option<S::T>> = vec![None; a.ncols()];
    for (i, v) in x.iter() {
        xd[i] = Some(v);
    }
    let mut y: Vec<Option<S::T>> = vec![None; a.nrows()];
    for (r, c, v) in a.iter() {
        if let Some(xv) = xd[c] {
            let prod = S::mul(v, xv);
            y[r] = Some(match y[r] {
                None => prod,
                Some(acc) => S::add(acc, prod),
            });
        }
    }
    y
}

/// Runs one (matrix, inputs) pair through every kernel × balance mode ×
/// tiling config and diffs support and values against the oracle.
fn check_matrix<S: Semiring>(
    name: &str,
    a: &CsrMatrix<S::T>,
    xs: &[SparseVector<S::T>],
    eq: impl Fn(S::T, S::T) -> bool + Copy,
) where
    S::T: Default + std::fmt::Debug,
{
    // extract_threshold 4 pushes near-empty tiles onto the COO side pass;
    // 0 keeps everything in tiles. Both paths must agree with the oracle
    // on every execution substrate.
    let backends = backends();
    let formats = formats();
    for extract in [0usize, 4] {
        for kernel in [KernelChoice::RowTile, KernelChoice::ColTile] {
            for (balance, &format) in [Balance::OneWarpPerRowTile, Balance::binned()]
                .into_iter()
                .flat_map(|b| formats.iter().map(move |f| (b, f)))
            {
                let cfg = TileConfig {
                    extract_threshold: extract,
                    ..Default::default()
                };
                let opts = SpMSpVOptions {
                    kernel,
                    balance,
                    format,
                    ..Default::default()
                };
                let mut engine = SpMSpVEngine::<S>::from_csr_with(a, cfg, opts).unwrap();
                for backend in &backends {
                    engine.set_backend(backend.clone());
                    for (si, x) in xs.iter().enumerate() {
                        let (y, _) = engine.multiply(x).unwrap();
                        let oracle = dense_oracle::<S>(a, x);
                        let support: Vec<u32> = oracle
                            .iter()
                            .enumerate()
                            .filter_map(|(i, v)| v.map(|_| i as u32))
                            .collect();
                        let ctx = format!(
                            "{name} extract={extract} {kernel:?} {balance:?} {format} backend {} input {si}",
                            backend.describe()
                        );
                        assert_eq!(y.indices(), &support[..], "{ctx}: support diverged");
                        for (i, got) in y.iter() {
                            let want = oracle[i].unwrap();
                            assert!(eq(got, want), "{ctx} row {i}: got {got:?}, want {want:?}");
                        }
                    }
                }
            }
        }
    }
}

/// ~30 matrices: tile-edge straddlers, the structure classes, rectangular
/// shapes, and the degenerate cases tiled layouts get wrong first.
fn conformance_zoo() -> Vec<(String, CsrMatrix<f64>)> {
    let mut zoo: Vec<(String, CsrMatrix<f64>)> = Vec::new();

    // Orders one below, at, and above one, two and four tile widths.
    for n in [1usize, 2, 31, 32, 33, 63, 64, 65, 96, 127, 128, 129] {
        let nnz = (n * n / 4).clamp(1, 6 * n);
        zoo.push((
            format!("uniform-{n}"),
            uniform_random(n, n, nnz, n as u64).to_csr(),
        ));
    }

    // Structure classes.
    zoo.push(("banded".into(), banded(300, 9, 0.7, 1).to_csr()));
    zoo.push(("banded-dense".into(), banded(128, 16, 1.0, 2).to_csr()));
    zoo.push(("grid".into(), grid2d(18, 17).to_csr()));
    zoo.push(("grid-square".into(), grid2d(16, 16).to_csr()));
    zoo.push(("geometric".into(), geometric_graph(350, 5.0, 3).to_csr()));
    zoo.push(("rmat".into(), rmat(RmatConfig::new(8, 6), 4).to_csr()));
    zoo.push((
        "rmat-skewed".into(),
        rmat(RmatConfig::new(7, 10), 9).to_csr(),
    ));
    zoo.push(("dense-64".into(), uniform_random(64, 64, 2048, 10).to_csr()));

    // Rectangular, including tile-edge straddling shapes.
    zoo.push((
        "rect-wide".into(),
        uniform_random(64, 320, 1800, 5).to_csr(),
    ));
    zoo.push((
        "rect-tall".into(),
        uniform_random(320, 60, 1800, 6).to_csr(),
    ));
    zoo.push((
        "rect-wide-edge".into(),
        uniform_random(33, 65, 400, 7).to_csr(),
    ));
    zoo.push((
        "rect-tall-edge".into(),
        uniform_random(65, 33, 400, 8).to_csr(),
    ));

    // Degenerate shapes.
    zoo.push(("empty".into(), CsrMatrix::zeros(64, 64)));
    zoo.push(("empty-offsize".into(), CsrMatrix::zeros(65, 33)));
    let mut single = CooMatrix::new(1, 1);
    single.push(0, 0, 2.5);
    zoo.push(("single".into(), single.to_csr()));
    let mut corner = CooMatrix::new(97, 97);
    corner.push(96, 96, -1.5);
    zoo.push(("lonely-corner".into(), corner.to_csr()));
    // One entry every 32nd diagonal position: every populated tile holds a
    // single element, everything else is empty — the all-empty-tile case.
    let mut sparse_diag = CooMatrix::new(256, 256);
    for k in (0..256).step_by(32) {
        sparse_diag.push(k, k, 1.0 + k as f64);
    }
    zoo.push(("sparse-diag".into(), sparse_diag.to_csr()));
    // All entries inside the first tile of a much larger grid: every
    // other row/column tile is structurally empty.
    let mut first_tile = CooMatrix::new(160, 160);
    for r in 0..16 {
        for c in 0..8 {
            first_tile.push(r, (c * 3) % 32, (r * 32 + c) as f64 * 0.25 + 1.0);
        }
    }
    zoo.push(("first-tile-only".into(), first_tile.to_csr()));

    zoo
}

/// Inputs for one matrix: the empty vector, a sparse and a dense random
/// vector, and a single mid-vector entry.
fn vector_zoo(ncols: usize) -> Vec<SparseVector<f64>> {
    vec![
        random_sparse_vector(ncols, 0.0, 1),
        random_sparse_vector(ncols, 0.03, 2),
        random_sparse_vector(ncols, 0.25, 3),
        SparseVector::from_entries(ncols, vec![(ncols as u32 / 2, 1.5)]).unwrap(),
    ]
}

fn bool_mirror(a: &CsrMatrix<f64>) -> CsrMatrix<bool> {
    CsrMatrix::from_parts(
        a.nrows(),
        a.ncols(),
        a.row_ptr().to_vec(),
        a.col_idx().to_vec(),
        vec![true; a.nnz()],
    )
    .unwrap()
}

fn bool_vec(x: &SparseVector<f64>) -> SparseVector<bool> {
    SparseVector::from_parts(x.len(), x.indices().to_vec(), vec![true; x.nnz()]).unwrap()
}

#[test]
fn plus_times_matches_the_dense_oracle_everywhere() {
    let mut coo_side_seen = false;
    for (name, a) in conformance_zoo() {
        check_matrix::<PlusTimes>(&name, &a, &vector_zoo(a.ncols()), |g, w| {
            (g - w).abs() < 1e-9
        });
        let cfg = TileConfig {
            extract_threshold: 4,
            ..Default::default()
        };
        coo_side_seen |= TileMatrix::from_csr(&a, cfg).unwrap().extra().nnz() > 0;
    }
    assert!(
        coo_side_seen,
        "the zoo must exercise the COO extraction side at threshold 4"
    );
}

/// The acceptance bar for the SELL slabs: on the whole zoo, PlusTimes is
/// bit-identical across {tile-CSR, SELL} × {model, native} × {1, 2, 4}
/// threads. The slab bodies fold each row in the same ascending-column
/// order as the tile-CSR walk and the permutation is undone at emit time,
/// so not a single bit may move.
#[test]
fn plus_times_is_bit_identical_across_formats_and_substrates() {
    let sell = SpvFormat::Sell(SellConfig {
        c: 8,
        sigma: 16,
        ..SellConfig::default()
    });
    for (name, a) in conformance_zoo() {
        for kernel in [KernelChoice::RowTile, KernelChoice::ColTile] {
            for balance in [Balance::OneWarpPerRowTile, Balance::binned()] {
                let x = random_sparse_vector(a.ncols(), 0.08, 7);
                let run = |format: SpvFormat, backend: ExecBackend| {
                    let opts = SpMSpVOptions {
                        kernel,
                        balance,
                        format,
                        ..Default::default()
                    };
                    let mut engine =
                        SpMSpVEngine::<PlusTimes>::from_csr_with(&a, TileConfig::default(), opts)
                            .unwrap();
                    engine.set_backend(backend);
                    let (y, _) = engine.multiply(&x).unwrap();
                    (
                        y.indices().to_vec(),
                        y.values().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    )
                };
                let reference = run(SpvFormat::TileCsr, ExecBackend::model());
                for format in [SpvFormat::TileCsr, sell] {
                    for threads in [None, Some(1), Some(2), Some(4)] {
                        let backend = match threads {
                            None => ExecBackend::model(),
                            Some(t) => ExecBackend::native(Some(t)),
                        };
                        let got = run(format, backend.clone());
                        assert_eq!(
                            got,
                            reference,
                            "{name} {kernel:?} {balance:?} {format} backend {}",
                            backend.describe()
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn min_plus_matches_the_dense_oracle_everywhere() {
    // min is selective and each product a single addition, so permuting
    // the fold order cannot change the value: the agreement is exact.
    for (name, a) in conformance_zoo() {
        check_matrix::<MinPlus>(&name, &a, &vector_zoo(a.ncols()), |g, w| g == w);
    }
}

#[test]
fn or_and_matches_the_dense_oracle_everywhere() {
    for (name, a) in conformance_zoo() {
        let b = bool_mirror(&a);
        let xs: Vec<SparseVector<bool>> = vector_zoo(a.ncols()).iter().map(bool_vec).collect();
        check_matrix::<OrAnd>(&name, &b, &xs, |g, w| g == w);
    }
}
