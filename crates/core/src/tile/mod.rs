//! Tiled storage structures (§3.2 of the paper).

pub mod bitmask;
pub mod bitvec;
pub mod layout;
pub mod matrix;
pub mod sell;
pub mod stats;
pub mod vector;

pub use bitmask::{BitTileMatrix, Orientation};
pub use bitvec::BitFrontier;
pub use layout::{TileConfig, TileSize};
pub use matrix::TileMatrix;
pub use sell::{SellConfig, SellSlabView, SellSlabs, SellStats};
pub use stats::{tile_count, TileStats};
pub use vector::TiledVector;
