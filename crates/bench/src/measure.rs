//! Timing and metric helpers used by every experiment.

use std::time::Instant;
use tsv_sparse::{CscMatrix, SparseVector};

/// Runs `f` repeatedly and returns the median wall time in seconds.
///
/// At least `min_iters` runs are taken, continuing until `min_total_secs`
/// of accumulated measurement time — the usual protection against timer
/// granularity for sub-millisecond kernels.
pub fn median_secs<F: FnMut()>(mut f: F, min_iters: usize, min_total_secs: f64) -> f64 {
    let mut samples = Vec::new();
    let mut total = 0.0f64;
    while samples.len() < min_iters || total < min_total_secs {
        let t = Instant::now();
        f();
        let dt = t.elapsed().as_secs_f64();
        samples.push(dt);
        total += dt;
        if samples.len() > 10_000 {
            break;
        }
    }
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// The useful multiply-add count of an SpMSpV: the entries in the matrix
/// columns selected by x's nonzeros (Fig. 6's x-axis quantity).
pub fn useful_products(a: &CscMatrix<f64>, x: &SparseVector<f64>) -> usize {
    x.iter().map(|(j, _)| a.col_nnz(j)).sum()
}

/// GFlops given useful products (2 flops each) and seconds.
pub fn gflops(products: usize, secs: f64) -> f64 {
    if secs <= 0.0 {
        return 0.0;
    }
    2.0 * products as f64 / secs / 1e9
}

/// Giga-traversed-edges-per-second, the BFS metric of Figures 8, 9, 12.
pub fn gteps(edges_traversed: usize, secs: f64) -> f64 {
    if secs <= 0.0 {
        return 0.0;
    }
    edges_traversed as f64 / secs / 1e9
}

/// Geometric mean of a slice (the paper's average-speedup aggregation).
pub fn geomean(vals: &[f64]) -> f64 {
    let positive: Vec<f64> = vals.iter().copied().filter(|&v| v > 0.0).collect();
    if positive.is_empty() {
        return 0.0;
    }
    (positive.iter().map(|v| v.ln()).sum::<f64>() / positive.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsv_sparse::gen::uniform_random;

    #[test]
    fn median_of_repeated_runs_is_positive() {
        let mut n = 0u64;
        let t = median_secs(
            || {
                n = n.wrapping_add(1);
                std::hint::black_box(n);
            },
            5,
            0.0,
        );
        assert!(t >= 0.0);
    }

    #[test]
    fn useful_products_counts_selected_columns() {
        let a = uniform_random(100, 100, 500, 1).to_csr().to_csc();
        let x = SparseVector::from_entries(100, vec![(3, 1.0), (50, 2.0)]).unwrap();
        let expect = a.col_nnz(3) + a.col_nnz(50);
        assert_eq!(useful_products(&a, &x), expect);
    }

    #[test]
    fn metric_formulas() {
        assert!((gflops(500_000_000, 1.0) - 1.0).abs() < 1e-12);
        assert!((gteps(2_000_000_000, 2.0) - 1.0).abs() < 1e-12);
        assert_eq!(gflops(10, 0.0), 0.0);
        assert_eq!(gteps(10, 0.0), 0.0);
    }

    #[test]
    fn geomean_basic() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[2.0, 0.0, 8.0]) - 4.0).abs() < 1e-12);
    }
}
