//! Stencil meshes: 2D 5-point and 3D 7-point Laplacian graphs.
//!
//! These model the planar/volume meshes of the collection (`333SP`,
//! `dielFilterV2clx`-like discretizations): bounded degree, strong locality,
//! long BFS diameters.

use crate::coo::CooMatrix;

/// 5-point stencil adjacency on an `nx × ny` grid (order `nx * ny`).
///
/// Off-diagonal entries are `-1`, the diagonal is the vertex degree, making
/// the result the graph Laplacian — symmetric positive semidefinite.
pub fn grid2d(nx: usize, ny: usize) -> CooMatrix<f64> {
    assert!(nx > 0 && ny > 0);
    let n = nx * ny;
    let idx = |x: usize, y: usize| y * nx + x;
    let mut m = CooMatrix::with_capacity(n, n, 5 * n);
    for y in 0..ny {
        for x in 0..nx {
            let u = idx(x, y);
            let mut deg = 0.0;
            let mut push_nbr = |v: usize, m: &mut CooMatrix<f64>| {
                m.push(u, v, -1.0);
                deg += 1.0;
            };
            if x > 0 {
                push_nbr(idx(x - 1, y), &mut m);
            }
            if x + 1 < nx {
                push_nbr(idx(x + 1, y), &mut m);
            }
            if y > 0 {
                push_nbr(idx(x, y - 1), &mut m);
            }
            if y + 1 < ny {
                push_nbr(idx(x, y + 1), &mut m);
            }
            m.push(u, u, deg);
        }
    }
    m
}

/// 7-point stencil Laplacian on an `nx × ny × nz` grid (order
/// `nx * ny * nz`).
pub fn grid3d(nx: usize, ny: usize, nz: usize) -> CooMatrix<f64> {
    assert!(nx > 0 && ny > 0 && nz > 0);
    let n = nx * ny * nz;
    let idx = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
    let mut m = CooMatrix::with_capacity(n, n, 7 * n);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let u = idx(x, y, z);
                let mut deg = 0.0;
                let mut push_nbr = |v: usize, m: &mut CooMatrix<f64>| {
                    m.push(u, v, -1.0);
                    deg += 1.0;
                };
                if x > 0 {
                    push_nbr(idx(x - 1, y, z), &mut m);
                }
                if x + 1 < nx {
                    push_nbr(idx(x + 1, y, z), &mut m);
                }
                if y > 0 {
                    push_nbr(idx(x, y - 1, z), &mut m);
                }
                if y + 1 < ny {
                    push_nbr(idx(x, y + 1, z), &mut m);
                }
                if z > 0 {
                    push_nbr(idx(x, y, z - 1), &mut m);
                }
                if z + 1 < nz {
                    push_nbr(idx(x, y, z + 1), &mut m);
                }
                m.push(u, u, deg);
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::bfs_levels;

    #[test]
    fn grid2d_shape_and_degree() {
        let m = grid2d(4, 3).to_csr();
        assert_eq!(m.nrows(), 12);
        // Interior vertex (1,1) -> index 5 has degree 4 plus diagonal.
        assert_eq!(m.row_nnz(5), 5);
        assert_eq!(m.get(5, 5), Some(4.0));
        // Corner vertex 0 has degree 2.
        assert_eq!(m.get(0, 0), Some(2.0));
    }

    #[test]
    fn grid2d_is_symmetric() {
        assert!(grid2d(7, 5).to_csr().is_symmetric());
    }

    #[test]
    fn grid2d_bfs_diameter_is_manhattan() {
        let m = grid2d(6, 4).to_csr().without_diagonal();
        let levels = bfs_levels(&m, 0).unwrap();
        // Farthest vertex from (0,0) is (5,3): distance 8.
        assert_eq!(*levels.iter().max().unwrap(), 8);
        assert!(levels.iter().all(|&l| l >= 0), "grid is connected");
    }

    #[test]
    fn grid3d_shape_and_degree() {
        let m = grid3d(3, 3, 3).to_csr();
        assert_eq!(m.nrows(), 27);
        // Center vertex has all 6 neighbors.
        let center = (3 + 1) * 3 + 1;
        assert_eq!(m.get(center, center), Some(6.0));
    }

    #[test]
    fn grid3d_is_symmetric() {
        assert!(grid3d(4, 3, 2).to_csr().is_symmetric());
    }

    #[test]
    fn laplacian_rows_sum_to_zero() {
        let m = grid2d(5, 5).to_csr();
        for i in 0..m.nrows() {
            let (_, vals) = m.row(i);
            let s: f64 = vals.iter().sum();
            assert!(s.abs() < 1e-12);
        }
    }
}
