//! Shared plumbing for the BFS baselines.

use std::time::Duration;
use tsv_simt::atomic::AtomicWords;
use tsv_simt::stats::KernelStats;
use tsv_sparse::{CsrMatrix, SparseError};

/// Per-iteration record of a baseline BFS run.
#[derive(Debug, Clone, Copy)]
pub struct BaselineIteration {
    /// Frontier size entering the iteration.
    pub frontier: usize,
    /// Strategy label (algorithm-specific; e.g. "push"/"pull").
    pub strategy: &'static str,
    /// Counted work of the iteration.
    pub stats: KernelStats,
    /// Wall time of the iteration.
    pub wall: Duration,
}

/// Result of a baseline BFS run, shape-compatible with the TileBFS result
/// so the harness can compare like for like.
#[derive(Debug, Clone)]
pub struct BaselineBfsResult {
    /// Level of each vertex (`-1` when unreachable).
    pub levels: Vec<i32>,
    /// Per-iteration trace.
    pub iterations: Vec<BaselineIteration>,
    /// Summed work counters.
    pub total_stats: KernelStats,
}

impl BaselineBfsResult {
    /// Number of reached vertices.
    pub fn reached(&self) -> usize {
        self.levels.iter().filter(|&&l| l >= 0).count()
    }

    /// Total wall time across iterations.
    pub fn wall(&self) -> Duration {
        self.iterations.iter().map(|r| r.wall).sum()
    }
}

/// Validates a square matrix and in-range source, the common precondition
/// of every baseline.
pub fn validate_bfs_input<T: Copy>(a: &CsrMatrix<T>, source: usize) -> Result<(), SparseError> {
    if a.nrows() != a.ncols() {
        return Err(SparseError::NotSquare {
            nrows: a.nrows(),
            ncols: a.ncols(),
        });
    }
    if source >= a.nrows() {
        return Err(SparseError::IndexOutOfBounds {
            row: source,
            col: 0,
            nrows: a.nrows(),
            ncols: 1,
        });
    }
    Ok(())
}

/// A concurrent visited set over `n` vertices: 64 vertices per word.
///
/// `try_visit` atomically claims a vertex, returning true for the winner —
/// the idempotent-filter primitive all frontier-queue baselines rely on.
#[derive(Debug)]
pub struct VisitedSet {
    words: AtomicWords,
    n: usize,
}

impl VisitedSet {
    /// An empty visited set.
    pub fn new(n: usize) -> Self {
        Self {
            words: AtomicWords::zeroed(n.div_ceil(64)),
            n,
        }
    }

    /// Number of vertices covered.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when covering zero vertices.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Atomically marks `v` visited; true when this call was the first.
    #[inline]
    pub fn try_visit(&self, v: usize) -> bool {
        debug_assert!(v < self.n);
        let old = self.words.fetch_or(v / 64, 1u64 << (v % 64));
        old >> (v % 64) & 1 == 0
    }

    /// Non-atomic test.
    #[inline]
    pub fn contains(&self, v: usize) -> bool {
        debug_assert!(v < self.n);
        self.words.load(v / 64) >> (v % 64) & 1 == 1
    }
}

/// A plain (non-atomic) bitmap over `n` vertices, used for dense frontier
/// representations in the direction-switching baselines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    n: usize,
}

impl Bitmap {
    /// An empty bitmap.
    pub fn new(n: usize) -> Self {
        Self {
            words: vec![0; n.div_ceil(64)],
            n,
        }
    }

    /// Builds from a vertex list.
    pub fn from_list(n: usize, list: &[u32]) -> Self {
        let mut b = Self::new(n);
        for &v in list {
            b.set(v as usize);
        }
        b
    }

    /// Sets vertex `v`.
    #[inline]
    pub fn set(&mut self, v: usize) {
        self.words[v / 64] |= 1u64 << (v % 64);
    }

    /// Tests vertex `v`.
    #[inline]
    pub fn get(&self, v: usize) -> bool {
        self.words[v / 64] >> (v % 64) & 1 == 1
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;
    use tsv_sparse::CooMatrix;

    #[test]
    fn bitmap_set_get_count() {
        let mut b = Bitmap::new(130);
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1));
        assert_eq!(b.count(), 3);
        let from = Bitmap::from_list(130, &[0, 64, 129]);
        assert_eq!(from, b);
    }

    #[test]
    fn try_visit_claims_once() {
        let vs = VisitedSet::new(100);
        assert!(vs.try_visit(42));
        assert!(!vs.try_visit(42));
        assert!(vs.contains(42));
        assert!(!vs.contains(41));
    }

    #[test]
    fn concurrent_claims_have_single_winner() {
        let vs = VisitedSet::new(64);
        let winners: usize = (0..1000)
            .into_par_iter()
            .map(|_| usize::from(vs.try_visit(7)))
            .sum();
        assert_eq!(winners, 1);
    }

    #[test]
    fn validate_rejects_bad_inputs() {
        let mut coo = CooMatrix::new(3, 4);
        coo.push(0, 3, 1.0);
        let rect = coo.to_csr();
        assert!(validate_bfs_input(&rect, 0).is_err());

        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 1, 1.0);
        let sq = coo.to_csr();
        assert!(validate_bfs_input(&sq, 0).is_ok());
        assert!(validate_bfs_input(&sq, 3).is_err());
    }
}
