//! Property-based tests on the storage formats: arbitrary sparse matrices
//! and vectors survive every conversion in the workspace unchanged.

use proptest::prelude::*;
use tilespmspv::prelude::*;
use tilespmspv::sparse::io::{read_matrix_market_from, write_matrix_market_to};
use tilespmspv::sparse::{CooMatrix, CsrMatrix, SparseVector};

/// An arbitrary matrix: shape up to 70x70, up to 180 entries (duplicates
/// allowed — conversions must sum them identically).
fn arb_matrix() -> impl Strategy<Value = CooMatrix<f64>> {
    (1usize..70, 1usize..70)
        .prop_flat_map(|(m, n)| {
            let entry = (0..m as u32, 0..n as u32, -100i32..100);
            (Just(m), Just(n), proptest::collection::vec(entry, 0..180))
        })
        .prop_map(|(m, n, entries)| {
            let mut coo = CooMatrix::new(m, n);
            for (r, c, v) in entries {
                // Avoid explicit zeros so nnz comparisons stay exact.
                let v = if v == 0 { 1 } else { v };
                coo.push(r as usize, c as usize, f64::from(v));
            }
            coo
        })
}

/// An arbitrary sparse vector of a given length.
fn arb_vector(n: usize) -> impl Strategy<Value = SparseVector<f64>> {
    proptest::collection::btree_map(0..n as u32, -50i32..50, 0..n.min(64)).prop_map(move |m| {
        let entries: Vec<(u32, f64)> = m
            .into_iter()
            .map(|(i, v)| (i, if v == 0 { 1.0 } else { f64::from(v) }))
            .collect();
        SparseVector::from_entries(n, entries).expect("btree keys are unique")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_csc_coo_roundtrips(coo in arb_matrix()) {
        let mut summed = coo.clone();
        summed.sum_duplicates();
        let csr = coo.to_csr();
        prop_assert_eq!(csr.to_coo().to_csr(), csr.clone());
        prop_assert_eq!(csr.to_csc().to_csr(), csr.clone());
        prop_assert_eq!(csr.transpose().transpose(), csr.clone());
        // Dense agreement across all three formats.
        prop_assert_eq!(csr.to_dense(), summed.to_dense());
        prop_assert_eq!(coo.to_csc().to_dense(), summed.to_dense());
    }

    #[test]
    fn tiled_roundtrip_any_config(coo in arb_matrix(), threshold in 0usize..6) {
        let csr = coo.to_csr();
        for ts in TileSize::all() {
            let cfg = TileConfig { tile_size: ts, extract_threshold: threshold, ..Default::default() };
            let tiled = TileMatrix::from_csr(&csr, cfg).unwrap();
            prop_assert_eq!(tiled.to_csr(), csr.clone());
            prop_assert_eq!(tiled.nnz(), csr.nnz());
        }
    }

    #[test]
    fn sell_slabs_round_trip_to_tile_csr(
        coo in arb_matrix(),
        c_pick in 0usize..2,
        sigma in 1usize..40,
    ) {
        // The SELL-C-σ construction is a pure re-layout: `perm` must be a
        // permutation of the tile's rows, `lens` the true row lengths,
        // every (col, val) recoverable from the lane-major slab at its
        // tile-CSR position, and the padding accounting consistent with
        // the recorded chunk widths.
        use tilespmspv::core::tile::{SellConfig, SellSlabs};
        let csr = coo.to_csr();
        let tiled = TileMatrix::from_csr(&csr, TileConfig::default()).unwrap();
        let cfg = SellConfig {
            c: [4, 8][c_pick],
            sigma,
            max_padding: 1e9, // convert every stored sparse tile
        };
        let slabs = SellSlabs::build(&tiled, cfg);
        prop_assert_eq!(slabs.stats().fallback_tiles, 0, "uncapped build must not fall back");
        let nt = tiled.nt();
        let c = cfg.c;
        let mut real = 0usize;
        for t in 0..tiled.num_tiles() {
            let view = tiled.tile(t);
            let Some(slab) = slabs.slab(t) else {
                prop_assert!(view.dense.is_some(), "only dense tiles may skip conversion");
                continue;
            };
            let mut seen = vec![false; nt];
            for (pos, &lr) in slab.perm.iter().enumerate() {
                prop_assert!(!seen[lr as usize], "perm repeats row {}", lr);
                seen[lr as usize] = true;
                let (cols, vals) = view.row(lr as usize);
                prop_assert_eq!(slab.lens[pos] as usize, cols.len());
                real += cols.len();
                let chunk = pos / c;
                let lane = pos % c;
                let base: usize = slab.widths[..chunk].iter().map(|&w| w as usize * c).sum();
                for k in 0..cols.len() {
                    prop_assert_eq!(slab.cols[base + k * c + lane], cols[k]);
                    prop_assert_eq!(slab.vals[base + k * c + lane], vals[k]);
                }
            }
            // Each chunk is padded exactly to its widest row.
            for (chunk, &w) in slab.widths.iter().enumerate() {
                let lens = &slab.lens[chunk * c..(chunk + 1) * c];
                prop_assert_eq!(w, *lens.iter().max().unwrap());
            }
        }
        prop_assert_eq!(slabs.stats().real_entries, real);
        prop_assert!(slabs.stats().padded_entries >= real);
        if real > 0 {
            prop_assert!(slabs.stats().padding_ratio() >= 1.0);
        }
    }

    #[test]
    fn matrix_market_roundtrip(coo in arb_matrix()) {
        let mut summed = coo.clone();
        summed.sum_duplicates();
        let mut buf = Vec::new();
        write_matrix_market_to(&mut buf, &summed).unwrap();
        let back = read_matrix_market_from(&buf[..]).unwrap();
        prop_assert_eq!(back.to_csr(), summed.to_csr());
    }

    #[test]
    fn tiled_vector_roundtrip(n in 1usize..300, seed in 0u64..100) {
        let x = tilespmspv::sparse::gen::random_sparse_vector(n, 0.2, seed);
        for nt in [4usize, 16, 32, 64] {
            let t = TiledVector::from_sparse(&x, nt);
            prop_assert_eq!(t.to_sparse(), x.clone());
            // O(1) access agrees element-wise.
            for i in 0..n {
                prop_assert_eq!(t.get(i), x.get(i).unwrap_or(0.0));
            }
        }
    }

    #[test]
    fn transpose_preserves_entries(coo in arb_matrix()) {
        let csr = coo.to_csr();
        let t = csr.transpose();
        prop_assert_eq!(t.nnz(), csr.nnz());
        for (r, c, v) in csr.iter() {
            prop_assert_eq!(t.get(c, r), Some(v));
        }
    }

    #[test]
    fn spvec_ops_match_dense_semantics(a in arb_vector(100), b in arb_vector(100)) {
        use tilespmspv::sparse::spvec_ops::{add, dot, mask_complement, mul};
        let (da, db) = (a.to_dense(), b.to_dense());

        let sum = add(&a, &b);
        for (i, (x, y)) in da.iter().zip(&db).enumerate() {
            prop_assert_eq!(sum.get(i).unwrap_or(0.0), x + y, "add at {}", i);
        }

        let prod = mul(&a, &b);
        for (i, (x, y)) in da.iter().zip(&db).enumerate() {
            prop_assert_eq!(prod.get(i).unwrap_or(0.0), x * y, "mul at {}", i);
        }

        let dense_dot: f64 = da.iter().zip(&db).map(|(x, y)| x * y).sum();
        prop_assert!((dot(&a, &b) - dense_dot).abs() < 1e-9);

        // Masking removes exactly b's support from a.
        let masked = mask_complement(&a, &b);
        for (i, v) in a.iter() {
            let expect = if b.get(i).is_some() { None } else { Some(v) };
            prop_assert_eq!(masked.get(i), expect, "mask at {}", i);
        }

        // Commutativity.
        prop_assert_eq!(add(&a, &b), add(&b, &a));
        prop_assert_eq!(mul(&a, &b), mul(&b, &a));
    }

    #[test]
    fn spmspv_matches_reference_under_proptest(
        coo in arb_matrix(),
        seed in 0u64..50,
        sparsity in 0.0f64..0.6,
    ) {
        let a = coo.to_csr();
        let x = tilespmspv::sparse::gen::random_sparse_vector(a.ncols(), sparsity, seed);
        let expect = tilespmspv::sparse::reference::spmspv_row(&a, &x).unwrap();
        let tiled = TileMatrix::from_csr(&a, TileConfig::default()).unwrap();
        let y = tile_spmspv(&tiled, &x).unwrap();
        prop_assert!(y.max_abs_diff(&expect) < 1e-9);
    }
}

#[test]
fn zero_row_and_column_edges() {
    // Matrices with entirely empty leading/trailing rows and columns.
    let mut coo = CooMatrix::new(40, 40);
    coo.push(20, 20, 5.0);
    let csr: CsrMatrix<f64> = coo.to_csr();
    let tiled = TileMatrix::from_csr(&csr, TileConfig::default()).unwrap();
    assert_eq!(tiled.to_csr(), csr);
    let x = SparseVector::from_entries(40, vec![(20, 2.0)]).unwrap();
    let y = tile_spmspv(&tiled, &x).unwrap();
    assert_eq!(y.get(20), Some(10.0));
    assert_eq!(y.nnz(), 1);
}
