//! Batched multi-frontier execution: one tile traversal, `B` query lanes.
//!
//! The production shape the ROADMAP names — millions of users querying the
//! *same* graph — wants the matrix traversal amortized across concurrent
//! sparse frontiers. A column-blocked batch of B sparse vectors is a thin
//! SpSpM (the blocked inner loop of tensor-core SpGEMM is the exemplar),
//! and this module makes it first-class:
//!
//! * [`BatchedSpMSpVEngine`] — a prepared [`TileMatrix`] multiplied
//!   against a *batch* of sparse vectors in one pass over the touched
//!   tiles. The padded output is a **lane-major slab**: the slot of
//!   (global row `r`, query lane `q`) is `r * B + q`, so each row tile
//!   owns a contiguous `nt * B` chunk and the existing chunked launch
//!   shapes prove write-disjointness across query lanes structurally.
//!   Lane-major also means the `B` accumulators of one row sit adjacent
//!   in memory — the layout the native backend's autovectorized bodies
//!   extend along.
//! * [`BatchedBfsEngine`] — the traversal counterpart: MS-BFS (one `u64`
//!   frontier word per vertex, bit `q` = "reached from source `q`") with
//!   owned round-to-round workspace and expansion routed through the
//!   [`Backend`] abstraction instead of `msbfs`'s previous ad-hoc rayon
//!   buffers. Bits merge by OR in warp order, so levels are independent
//!   of thread count and chunking.
//!
//! Determinism: per query lane the fold order into `y` is *identical* to
//! a sequential [`super::SpMSpVEngine`] multiply (tiles in tile order,
//! rows folded in CSR order, buffered partials merged in warp/part
//! order), so `PlusTimes` batched output is bit-for-bit equal to `B`
//! independent sequential multiplies — on both backends, both formats,
//! both balance modes, and any thread count. The differential suite in
//! `tests/batched_equivalence.rs` certifies exactly this.
//!
//! Amortization: the batched kernels walk each touched tile once and
//! charge its body traffic once (first active lane), while every lane
//! pays its own vector-tile loads and flops. SpMSpV is memory-bound on
//! the roofline, so modeled device time per query drops toward the
//! compute bound as B grows — `repro bench` reports the measured
//! amortization rows.

use super::emetrics;
use super::EngineMetrics;
use crate::semiring::{PlusTimes, Semiring};
use crate::spmspv::generic::{
    batched_coo_kernel_semiring, batched_row_kernel_binned_semiring, batched_row_kernel_semiring,
    build_batched_row_worklist, drain_touched,
};
use crate::spmspv::verify;
use crate::spmspv::{Balance, DispatchStats, SpMSpVOptions, SpvFormat};
use crate::tile::{SellSlabs, SellStats, TileConfig, TileMatrix, TiledVector};
use std::sync::Arc;
use std::time::Instant;
use tsv_simt::analyze::PlanReport;
use tsv_simt::atomic::AtomicWords;
use tsv_simt::backend::{Backend, ExecBackend};
use tsv_simt::grid::BinPlan;
use tsv_simt::profile::Profiler;
use tsv_simt::sanitize::{self, Sanitizer};
use tsv_simt::stats::KernelStats;
use tsv_simt::trace::{self, IterationInfo, Tracer};
use tsv_simt::warp::WARP_SIZE;
use tsv_sparse::{CsrMatrix, SparseError, SparseVector};

/// Per-lane outputs paired with the batch execution report: what a
/// batched multiply returns.
pub type BatchResult<T> = Result<(Vec<SparseVector<T>>, BatchExecReport), SparseError>;

/// One query lane's contribution to a batched multiply, for the
/// run-summary `batch` object's per-query rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchQueryReport {
    /// Nonzeros of this lane's input frontier.
    pub x_nnz: usize,
    /// Nonzeros of this lane's compacted output.
    pub y_nnz: usize,
}

/// What one batched multiply did: the shared-traversal counters plus the
/// per-lane input/output shapes.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchExecReport {
    /// Query lanes in the batch (`B`).
    pub batch: usize,
    /// Work counters of the shared tile pass, the per-lane COO passes and
    /// dispatch planning, summed.
    pub stats: KernelStats,
    /// The binned dispatch shape over the union work list, when
    /// [`Balance::Binned`] was selected.
    pub dispatch: Option<DispatchStats>,
    /// The storage format the kernels routed through.
    pub format: SpvFormat,
    /// SELL slab construction stats, when the format was [`SpvFormat::Sell`].
    pub sell: Option<SellStats>,
    /// Per-lane input/output nonzero counts, lane order.
    pub per_query: Vec<BatchQueryReport>,
}

/// Reusable scratch for the batched driver: one tiled vector per query
/// lane, the lane-major output slab, and the shared touched/merge/plan
/// machinery of the sequential workspace.
#[derive(Debug)]
pub struct BatchedSpMSpVWorkspace<T = f64> {
    /// One compressed input per lane; lanes beyond the current batch
    /// width keep their buffers warm for wider later rounds.
    xts: Vec<TiledVector<T>>,
    /// Lane-major slab, `m_tiles * nt * B` slots; slot of (row `r`, lane
    /// `q`) is `r * B + q`.
    y: Vec<T>,
    touched: AtomicWords,
    touched_list: Vec<u32>,
    contribs: Vec<Vec<(u32, T)>>,
    /// Union work list: row tiles active in *any* lane, ascending.
    worklist: Vec<u32>,
    unit_weights: Vec<u64>,
    plan: BinPlan,
    /// Per-lane compacted-output staging.
    staged: Vec<(Vec<u32>, Vec<T>)>,
    metrics: EngineMetrics,
    last_analysis: Option<PlanReport>,
}

impl<T: Copy + PartialEq + Default + Send + Sync> BatchedSpMSpVWorkspace<T> {
    /// An empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        Self {
            xts: Vec::new(),
            y: Vec::new(),
            touched: AtomicWords::zeroed(0),
            touched_list: Vec::new(),
            contribs: Vec::new(),
            worklist: Vec::new(),
            unit_weights: Vec::new(),
            plan: BinPlan::new(),
            staged: Vec::new(),
            metrics: EngineMetrics::default(),
            last_analysis: None,
        }
    }

    /// The plan-time verifier's report for the most recent batched
    /// multiply, when it ran with [`SpMSpVOptions::verify`] set.
    pub fn last_analysis(&self) -> Option<&PlanReport> {
        self.last_analysis.as_ref()
    }

    /// Sizes the buffers for `a` at batch width `b`. A no-op once the
    /// geometry (matrix *and* width) matches; extra lanes from wider past
    /// rounds are kept warm.
    fn prepare(&mut self, a: &TileMatrix<T>, b: usize, zero: T) {
        let nt = a.nt();
        let padded = a.m_tiles() * nt * b;
        let words = a.m_tiles().div_ceil(64);
        let mut reshaped = false;
        if self.y.len() != padded {
            self.y.clear();
            self.y.resize(padded, zero);
            reshaped = true;
        }
        if self.touched.len() != words {
            self.touched = AtomicWords::zeroed(words);
            reshaped = true;
        }
        if self.touched_list.capacity() < a.m_tiles() {
            self.touched_list
                .reserve(a.m_tiles() - self.touched_list.len());
            reshaped = true;
        }
        if self.unit_weights.len() != a.m_tiles() {
            self.unit_weights.clear();
            self.unit_weights.resize(a.m_tiles(), 0);
            reshaped = true;
        }
        if self.worklist.capacity() < a.m_tiles() {
            self.worklist.reserve(a.m_tiles() - self.worklist.len());
            reshaped = true;
        }
        for q in 0..b.min(self.xts.len()) {
            let xt = &self.xts[q];
            if xt.len() != a.ncols() || xt.nt() != nt {
                let mut fresh = TiledVector::zeros(a.ncols(), nt);
                fresh.reserve_full();
                self.xts[q] = fresh;
                reshaped = true;
            }
        }
        while self.xts.len() < b {
            let mut xt = TiledVector::zeros(a.ncols(), nt);
            xt.reserve_full();
            self.xts.push(xt);
            reshaped = true;
        }
        if self.staged.len() < b {
            self.staged.resize_with(b, Default::default);
            reshaped = true;
        }
        if reshaped {
            self.metrics.scratch_reshapes += 1;
            emetrics::WS_BATCHED.set(self.approx_bytes() as f64);
        }
    }

    /// Approximate resident scratch bytes (capacities, not lengths) — the
    /// `tsv_engine_workspace_bytes{engine="spmspv-batched"}` gauge.
    pub fn approx_bytes(&self) -> u64 {
        let t = std::mem::size_of::<T>() as u64;
        let mut b = self.y.capacity() as u64 * t
            + self.touched.len() as u64 * 8
            + self.touched_list.capacity() as u64 * 4
            + self.worklist.capacity() as u64 * 4
            + self.unit_weights.capacity() as u64 * 8;
        for xt in &self.xts {
            b += xt.payload_fingerprint().1 as u64 * t;
        }
        for c in &self.contribs {
            b += c.capacity() as u64 * (4 + t);
        }
        for (i, v) in &self.staged {
            b += i.capacity() as u64 * 4 + v.capacity() as u64 * t;
        }
        b
    }

    /// The cumulative accounting for this workspace.
    pub fn metrics(&self) -> EngineMetrics {
        self.metrics
    }

    /// Zeroes the accounting without touching the buffers.
    pub fn reset_metrics(&mut self) {
        self.metrics = EngineMetrics::default();
    }

    /// `(pointer, capacity)` pairs of the owned scratch buffers, for
    /// asserting that steady-state reuse at a fixed batch width neither
    /// moves nor regrows them.
    pub fn scratch_fingerprint(&self) -> Vec<(usize, usize)> {
        let mut f = vec![(self.y.as_ptr() as usize, self.y.capacity())];
        for xt in &self.xts {
            f.push(xt.payload_fingerprint());
        }
        f.push((
            self.touched_list.as_ptr() as usize,
            self.touched_list.capacity(),
        ));
        f.push((self.worklist.as_ptr() as usize, self.worklist.capacity()));
        f.push((
            self.unit_weights.as_ptr() as usize,
            self.unit_weights.capacity(),
        ));
        f
    }
}

impl<T: Copy + PartialEq + Default + Send + Sync> Default for BatchedSpMSpVWorkspace<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// `y_q = A ⊕.⊗ x_q` for every lane `q` of a batch, in one pass over the
/// touched tiles, on an explicit execution [`Backend`].
///
/// The batched engine is row-tile only ([`SpMSpVOptions::kernel`] is not
/// consulted): the row-tile kernel is the shape whose exclusive output
/// chunks extend to lane-major slabs, and both [`Balance`] modes are
/// supported over the *union* work list of the batch. Everything else
/// matches the sequential driver: dispatch telemetry, plan-time
/// verification under [`SpMSpVOptions::verify`], sanitizer epochs per
/// launch, and touched-tile compaction (now per lane).
///
/// # Panics
///
/// Same dense-tile rule as the sequential driver: when `S::zero()`
/// differs from `S::T::default()`, `a` must store no dense tiles.
#[allow(clippy::too_many_arguments, clippy::too_many_lines)]
pub fn batched_spmspv_on_backend<S: Semiring, B: Backend>(
    backend: &B,
    a: &TileMatrix<S::T>,
    xs: &[SparseVector<S::T>],
    opts: SpMSpVOptions,
    ws: &mut BatchedSpMSpVWorkspace<S::T>,
    sell: Option<&SellSlabs<S::T>>,
    tracer: Option<&Tracer>,
    san: Option<&Sanitizer>,
) -> BatchResult<S::T>
where
    S::T: Default,
{
    let b = xs.len();
    let sell = match opts.format {
        SpvFormat::Sell(_) => sell,
        SpvFormat::TileCsr => None,
    };
    if b == 0 {
        return Ok((
            Vec::new(),
            BatchExecReport {
                batch: 0,
                stats: KernelStats::default(),
                dispatch: None,
                format: opts.format,
                sell: sell.map(|s| *s.stats()),
                per_query: Vec::new(),
            },
        ));
    }
    for x in xs {
        if a.ncols() != x.len() {
            return Err(SparseError::DimensionMismatch {
                op: "batched_spmspv",
                expected: a.ncols(),
                found: x.len(),
            });
        }
    }
    assert!(
        S::zero() == S::T::default() || a.dense_tiles() == 0,
        "semiring zero differs from the structural default value; \
         build the matrix with dense tiles disabled (dense_threshold > 1.0)"
    );
    match opts.format {
        SpvFormat::TileCsr => tsv_simt::metrics::format_metrics().launches_tilecsr.inc(),
        SpvFormat::Sell(_) => tsv_simt::metrics::format_metrics().launches_sell.inc(),
    }
    ws.prepare(a, b, S::zero());
    let BatchedSpMSpVWorkspace {
        xts,
        y,
        touched,
        touched_list,
        contribs,
        worklist,
        unit_weights,
        plan,
        staged,
        metrics,
        last_analysis,
    } = ws;
    *last_analysis = None;
    let xts = &mut xts[..b];

    let t_compress = trace::start(tracer);
    let m_compress = emetrics::begin(&emetrics::COMPRESS);
    for (xt, x) in xts.iter_mut().zip(xs) {
        xt.refill(x, S::zero());
    }
    emetrics::end(&emetrics::COMPRESS, m_compress);
    trace::phase(tracer, "spmspv/compress-x", t_compress);
    let xts = &xts[..b];

    let coo_active = a.extra().nnz() > 0 && xs.iter().any(|x| x.nnz() > 0);
    let nt = a.nt();

    // Plan-time verification of the direct shape happens before launch;
    // the binned shapes verify inside the dispatch arm, after planning
    // builds the union work list (still pre-launch). The batched chunked
    // footprint is what discharges write-disjointness across query lanes.
    if opts.verify && opts.balance == Balance::OneWarpPerRowTile {
        let mut launches =
            vec![
                verify::batched_row_direct_launch(a.m_tiles(), nt, b, a.n_tiles(), touched.len())
                    .map_err(verify::plan_error)?,
            ];
        if coo_active {
            for x in xs {
                if x.nnz() > 0 {
                    launches.push(verify::batched_coo_launch(x.nnz(), x.len()));
                }
            }
        }
        *last_analysis = Some(verify::run(
            &verify::batched_plan_label(b, &opts),
            &launches,
        ));
    }

    let t_kernel = trace::start(tracer);
    let m_kernel = emetrics::begin(&emetrics::KERNEL_ROW);
    let mut dispatch = None;
    let mut stats = match opts.balance {
        Balance::OneWarpPerRowTile => {
            sanitize::begin(san, "spmspv/row-tile-batched", nt * b);
            let stats = batched_row_kernel_semiring::<S, _>(backend, a, xts, y, sell, touched, san);
            sanitize::barrier(san);
            stats
        }
        Balance::Binned {
            target_nnz,
            max_split,
        } => {
            let t_plan = trace::start(tracer);
            let m_plan = emetrics::begin(&emetrics::PLAN);
            let mut plan_stats = KernelStats::default();
            build_batched_row_worklist(a, xts, worklist, unit_weights, &mut plan_stats);
            plan.rebuild(
                worklist,
                |u| unit_weights[u as usize],
                u64::from(target_nnz).max(1),
                max_split.max(1),
            );
            for &u in worklist.iter() {
                unit_weights[u as usize] = 0;
            }
            let dstats = DispatchStats::from_plan(plan, worklist.len());
            dispatch = Some(dstats);
            emetrics::end(&emetrics::PLAN, m_plan);
            let info = dstats.to_trace_info();
            emetrics::DISPATCH_PLANS.inc();
            emetrics::DISPATCH_WARPS.observe(u64::from(info.warps));
            emetrics::DISPATCH_IMBALANCE.observe((info.imbalance() * 100.0) as u64);
            trace::dispatch(tracer, "spmspv/dispatch-plan", info, t_plan);
            if opts.verify {
                let fast =
                    plan.n_warps() == worklist.len() && plan.n_assignments() == worklist.len();
                let launch = if fast {
                    verify::batched_row_binned_fast_launch(
                        a.m_tiles(),
                        nt,
                        b,
                        a.n_tiles(),
                        touched.len(),
                        worklist,
                    )
                    .map_err(verify::plan_error)?
                } else {
                    verify::binned_buffered_launch(
                        "spmspv/row-tile-batched-binned",
                        plan,
                        worklist,
                        a.n_tiles(),
                    )
                };
                let mut launches = vec![launch];
                if coo_active {
                    for x in xs {
                        if x.nnz() > 0 {
                            launches.push(verify::batched_coo_launch(x.nnz(), x.len()));
                        }
                    }
                }
                *last_analysis = Some(verify::run(
                    &verify::batched_plan_label(b, &opts),
                    &launches,
                ));
            }
            sanitize::begin(san, "spmspv/row-tile-batched-binned", nt * b);
            let stats = plan_stats
                + batched_row_kernel_binned_semiring::<S, _>(
                    backend, a, xts, y, sell, worklist, plan, contribs, touched, san,
                );
            sanitize::barrier(san);
            stats
        }
    };
    emetrics::end(&emetrics::KERNEL_ROW, m_kernel);
    trace::phase(tracer, "spmspv/row-tile-kernel", t_kernel);

    // Per-lane hybrid COO passes: lanes land on disjoint slab slots
    // (`r * B + q`), so the launches compose without cross-lane
    // interference; each runs in its own sanitizer epoch.
    if coo_active {
        let t_coo = trace::start(tracer);
        let m_coo = emetrics::begin(&emetrics::COO);
        for (q, x) in xs.iter().enumerate() {
            if x.nnz() == 0 {
                continue;
            }
            sanitize::begin(san, "spmspv/coo-batched", nt * b);
            stats +=
                batched_coo_kernel_semiring::<S, _>(backend, a, x, q, b, y, contribs, touched, san);
            sanitize::barrier(san);
        }
        emetrics::end(&emetrics::COO, m_coo);
        trace::phase(tracer, "spmspv/coo-pass", t_coo);
    }

    // Per-lane compaction over the touched row tiles only: rows ascend
    // outer, lanes inner, so each lane's staged indices come out sorted.
    let t_compact = trace::start(tracer);
    let m_compact = emetrics::begin(&emetrics::COMPACT);
    drain_touched(touched, touched_list);
    let n = a.nrows();
    let zero = S::zero();
    for (i, v) in staged.iter_mut().take(b) {
        i.clear();
        v.clear();
    }
    for &rt in touched_list.iter() {
        let base = rt as usize * nt;
        let end = (base + nt).min(n);
        for r in base..end {
            for (q, (si, sv)) in staged.iter_mut().enumerate().take(b) {
                let val = y[r * b + q];
                if val != zero {
                    si.push(r as u32);
                    sv.push(val);
                }
            }
        }
        metrics.slots_scanned += ((end - base) * b) as u64;
        y[base * b..(base + nt) * b].fill(zero);
        metrics.slots_reset += (nt * b) as u64;
    }
    metrics.calls += 1;
    emetrics::end(&emetrics::COMPACT, m_compact);
    trace::phase(tracer, "spmspv/compact", t_compact);

    let mut outputs = Vec::with_capacity(b);
    let mut per_query = Vec::with_capacity(b);
    for (q, (si, sv)) in staged.iter_mut().enumerate().take(b) {
        per_query.push(BatchQueryReport {
            x_nnz: xs[q].nnz(),
            y_nnz: si.len(),
        });
        outputs.push(
            SparseVector::from_parts(a.nrows(), std::mem::take(si), std::mem::take(sv))
                .expect("touched-tile order yields sorted unique indices"),
        );
    }

    Ok((
        outputs,
        BatchExecReport {
            batch: b,
            stats,
            dispatch,
            format: opts.format,
            sell: sell.map(|s| *s.stats()),
            per_query,
        },
    ))
}

/// A prepared batched SpMSpV operator: a [`TileMatrix`] bound to a
/// [`BatchedSpMSpVWorkspace`] and a per-kernel [`Profiler`].
///
/// ```
/// use tsv_core::exec::BatchedSpMSpVEngine;
/// use tsv_core::semiring::PlusTimes;
/// use tsv_core::tile::TileConfig;
///
/// let a = tsv_sparse::gen::banded(200, 4, 0.9, 7).to_csr();
/// let mut engine = BatchedSpMSpVEngine::<PlusTimes>::from_csr(&a, TileConfig::default()).unwrap();
/// let xs: Vec<_> = (0..4)
///     .map(|s| tsv_sparse::gen::random_sparse_vector(200, 0.05, s))
///     .collect();
/// let (ys, report) = engine.multiply(&xs).unwrap();
/// assert_eq!(ys.len(), 4);
/// assert_eq!(report.batch, 4);
/// ```
pub struct BatchedSpMSpVEngine<S: Semiring = PlusTimes> {
    a: TileMatrix<S::T>,
    opts: SpMSpVOptions,
    ws: BatchedSpMSpVWorkspace<S::T>,
    sell: Option<SellSlabs<S::T>>,
    profiler: Profiler,
    tracer: Option<Arc<Tracer>>,
    sanitizer: Option<Arc<Sanitizer>>,
    backend: ExecBackend,
}

impl<S: Semiring> BatchedSpMSpVEngine<S>
where
    S::T: Default,
{
    /// Wraps an already-tiled matrix with default options.
    pub fn new(a: TileMatrix<S::T>) -> Self {
        Self::with_options(a, SpMSpVOptions::default())
    }

    /// Wraps an already-tiled matrix. The kernel choice in `opts` is not
    /// consulted — the batched engine is row-tile only; balance, format
    /// and verify apply as in the sequential engine.
    pub fn with_options(a: TileMatrix<S::T>, opts: SpMSpVOptions) -> Self {
        let sell = super::build_sell_slabs::<S>(&a, opts.format);
        Self {
            a,
            opts,
            ws: BatchedSpMSpVWorkspace::new(),
            sell,
            profiler: Profiler::new(),
            tracer: None,
            sanitizer: None,
            backend: ExecBackend::default(),
        }
    }

    /// Tiles `a` and wraps it, applying the same dense-tile safety rule as
    /// [`super::SpMSpVEngine::from_csr`].
    pub fn from_csr(a: &CsrMatrix<S::T>, mut config: TileConfig) -> Result<Self, SparseError> {
        if S::zero() != S::T::default() {
            config.dense_threshold = 2.0;
        }
        Ok(Self::new(TileMatrix::from_csr(a, config)?))
    }

    /// [`Self::from_csr`] with explicit options.
    pub fn from_csr_with(
        a: &CsrMatrix<S::T>,
        mut config: TileConfig,
        opts: SpMSpVOptions,
    ) -> Result<Self, SparseError> {
        if S::zero() != S::T::default() {
            config.dense_threshold = 2.0;
        }
        Ok(Self::with_options(TileMatrix::from_csr(a, config)?, opts))
    }

    /// Attaches (or detaches) a shared tracer.
    pub fn set_tracer(&mut self, tracer: Option<Arc<Tracer>>) {
        self.tracer = tracer;
    }

    /// Attaches (or detaches) a shared race sanitizer (model backend
    /// only, as in the sequential engine).
    pub fn set_sanitizer(&mut self, sanitizer: Option<Arc<Sanitizer>>) {
        self.sanitizer = sanitizer;
    }

    /// Selects the execution substrate for every later `multiply`.
    pub fn set_backend(&mut self, backend: ExecBackend) {
        emetrics::BACKEND_SWITCHES.inc();
        self.backend = backend;
    }

    /// The selected execution backend.
    pub fn backend(&self) -> &ExecBackend {
        &self.backend
    }

    /// The prepared matrix.
    pub fn matrix(&self) -> &TileMatrix<S::T> {
        &self.a
    }

    /// The kernel-selection options.
    pub fn options(&self) -> SpMSpVOptions {
        self.opts
    }

    /// Cumulative workspace accounting.
    pub fn metrics(&self) -> EngineMetrics {
        self.ws.metrics()
    }

    /// The plan-time verifier's report for the most recent multiply, when
    /// the options set [`SpMSpVOptions::verify`].
    pub fn last_analysis(&self) -> Option<&PlanReport> {
        self.ws.last_analysis()
    }

    /// The cumulative per-kernel breakdown.
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// `(pointer, capacity)` pairs of the workspace buffers.
    pub fn scratch_fingerprint(&self) -> Vec<(usize, usize)> {
        self.ws.scratch_fingerprint()
    }

    /// Starts a fresh measurement window over warm scratch.
    pub fn reset(&mut self) {
        emetrics::RESETS.inc();
        self.profiler.clear();
        self.ws.reset_metrics();
    }

    /// `y_q = A ⊕.⊗ x_q` for every lane of the batch in one shared tile
    /// traversal, recording the launch under the batched kernel label.
    pub fn multiply(&mut self, xs: &[SparseVector<S::T>]) -> BatchResult<S::T> {
        let tracer = self.tracer.as_deref();
        let t0 = trace::start(tracer);
        let start = Instant::now();
        let (ys, report) = batched_spmspv_on_backend::<S, _>(
            &self.backend,
            &self.a,
            xs,
            self.opts,
            &mut self.ws,
            self.sell.as_ref(),
            tracer,
            self.sanitizer.as_deref(),
        )?;
        let wall = start.elapsed();
        let label = match self.opts.balance {
            Balance::OneWarpPerRowTile => "spmspv/row-tile-batched",
            Balance::Binned { .. } => "spmspv/row-tile-batched-binned",
        };
        trace::kernel(tracer, label, report.stats, t0);
        self.profiler.record(label, report.stats, wall);
        emetrics::BATCH_WIDTH.set(report.batch as f64);
        emetrics::BATCHED_MULTIPLIES.inc();
        emetrics::MULTIPLY.observe(wall.as_nanos() as u64);
        Ok((ys, report))
    }
}

/// Vertices per expansion warp in the MS-BFS kernel. Fixed (not
/// thread-count-derived) so the launch shape — and with it the modeled
/// counters — is identical across backends and thread counts.
const MSBFS_CHUNK: usize = WARP_SIZE;

/// Multi-source BFS as a first-class batched engine: up to 64 traversals
/// sharing every adjacency read, frontiers stored as one `u64` word per
/// vertex (bit `q` = "reached from source `q`" — the column-blocked batch
/// in bit form). Owns its round-to-round workspace and routes the
/// expansion through the [`Backend`] abstraction: each warp scans a chunk
/// of the active list into a private `(vertex, bits)` bucket, buckets
/// merge by OR in warp order after the barrier. OR is commutative and
/// idempotent, so levels are exactly those of per-source sequential BFS
/// regardless of backend, thread count, or chunking — the msbfs
/// regression suite pins this against the old round-buffer
/// implementation's outputs.
#[derive(Debug)]
pub struct BatchedBfsEngine {
    seen: Vec<u64>,
    front: Vec<u64>,
    next: Vec<u64>,
    active: Vec<u32>,
    new_active: Vec<u32>,
    contribs: Vec<Vec<(u32, u64)>>,
    backend: ExecBackend,
    tracer: Option<Arc<Tracer>>,
    runs: u64,
}

impl BatchedBfsEngine {
    /// An engine with empty workspace; buffers are sized on first run.
    pub fn new() -> Self {
        Self {
            seen: Vec::new(),
            front: Vec::new(),
            next: Vec::new(),
            active: Vec::new(),
            new_active: Vec::new(),
            contribs: Vec::new(),
            backend: ExecBackend::default(),
            tracer: None,
            runs: 0,
        }
    }

    /// Attaches (or detaches) a shared tracer; each shared level then
    /// records one `msbfs/level` iteration event.
    pub fn set_tracer(&mut self, tracer: Option<Arc<Tracer>>) {
        self.tracer = tracer;
    }

    /// Selects the execution substrate for every later `run`.
    pub fn set_backend(&mut self, backend: ExecBackend) {
        emetrics::BACKEND_SWITCHES.inc();
        self.backend = backend;
    }

    /// Traversals completed on this engine.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Runs up to 64 concurrent BFS traversals over the shared adjacency.
    /// Returns `levels[s][v]`: the level of vertex `v` from `sources[s]`
    /// (`-1` when unreachable).
    ///
    /// # Panics
    ///
    /// When more than 64 sources are given.
    #[allow(clippy::too_many_lines)]
    pub fn run(
        &mut self,
        a: &CsrMatrix<f64>,
        sources: &[usize],
    ) -> Result<Vec<Vec<i32>>, SparseError> {
        if a.nrows() != a.ncols() {
            return Err(SparseError::NotSquare {
                nrows: a.nrows(),
                ncols: a.ncols(),
            });
        }
        assert!(sources.len() <= 64, "at most 64 concurrent sources");
        let n = a.nrows();
        for &s in sources {
            if s >= n {
                return Err(SparseError::IndexOutOfBounds {
                    row: s,
                    col: 0,
                    nrows: n,
                    ncols: 1,
                });
            }
        }

        let k = sources.len();
        let mut levels = vec![vec![-1i32; n]; k];
        if k == 0 {
            return Ok(levels);
        }
        emetrics::BATCH_WIDTH.set(k as f64);

        // Size (or re-zero) the per-vertex frontier words.
        for buf in [&mut self.seen, &mut self.front, &mut self.next] {
            buf.clear();
            buf.resize(n, 0);
        }
        for (i, &s) in sources.iter().enumerate() {
            self.seen[s] |= 1 << i;
            self.front[s] |= 1 << i;
            levels[i][s] = 0;
        }

        let mut level = 0i32;
        self.active.clear();
        self.active.extend(sources.iter().map(|&s| s as u32));
        self.active.sort_unstable();
        self.active.dedup();

        let tr = self.tracer.as_deref();
        let mut frontier_pairs = k;
        let mut reached_pairs = k;

        while !self.active.is_empty() {
            level += 1;
            let t0 = trace::start(tr);
            let m_iter = emetrics::begin(&emetrics::BFS_ITER);
            // Expand: next[v] = OR of front[u] over out-edges of the
            // active vertices, minus seen. One warp per fixed-size chunk
            // of the active list, each buffering into its own bucket —
            // the same exclusive-slot shape as the scatter kernels.
            let n_warps = self.active.len().div_ceil(MSBFS_CHUNK);
            if self.contribs.len() < n_warps {
                self.contribs.resize_with(n_warps, Vec::new);
            }
            let active = &self.active;
            let front = &self.front;
            let seen = &self.seen;
            self.backend.launch_over_chunks(
                "bfs/msbfs-expand",
                &mut self.contribs[..n_warps],
                1,
                |warp, chunk| {
                    let bucket = &mut chunk[0];
                    let start = warp.warp_id * MSBFS_CHUNK;
                    let end = (start + MSBFS_CHUNK).min(active.len());
                    for &u in &active[start..end] {
                        let fu = front[u as usize];
                        let (nbrs, _) = a.row(u as usize);
                        // Row extent + the frontier word (streamed).
                        warp.stats.read(8 + 8);
                        warp.stats.read(nbrs.len() * 4);
                        let mut steps = 0usize;
                        for &v in nbrs {
                            warp.stats.read_scattered(8); // seen[v]
                            let fresh = fu & !seen[v as usize];
                            if fresh != 0 {
                                bucket.push((v, fu));
                                warp.stats.atomic(1);
                                warp.stats.write_scattered(8);
                            }
                            steps += 1;
                        }
                        warp.stats.lane_steps +=
                            steps.div_ceil(WARP_SIZE) as u64 * WARP_SIZE as u64;
                    }
                },
            );

            self.next.fill(0);
            for bucket in &mut self.contribs[..n_warps] {
                for &(v, bits) in bucket.iter() {
                    self.next[v as usize] |= bits;
                }
                bucket.clear();
            }

            // Retire the old frontier word-by-word (nonzero only at the
            // active vertices).
            for &u in &self.active {
                self.front[u as usize] = 0;
            }

            // Filter to freshly-discovered (vertex, source) pairs; those
            // form the next frontier and get this level.
            self.new_active.clear();
            let mut discovered = 0usize;
            for v in 0..n {
                let fresh = self.next[v] & !self.seen[v];
                if fresh != 0 {
                    self.seen[v] |= fresh;
                    self.front[v] = fresh;
                    discovered += fresh.count_ones() as usize;
                    for (i, lv) in levels.iter_mut().enumerate().take(k) {
                        if fresh >> i & 1 == 1 {
                            lv[v] = level;
                        }
                    }
                    self.new_active.push(v as u32);
                }
            }
            reached_pairs += discovered;
            emetrics::end(&emetrics::BFS_ITER, m_iter);
            trace::iteration(
                tr,
                "msbfs/level",
                None,
                IterationInfo {
                    level: level as u32,
                    frontier: frontier_pairs,
                    discovered,
                    unvisited: n * k - reached_pairs,
                    density: frontier_pairs as f64 / (n * k) as f64,
                },
                t0,
            );
            frontier_pairs = discovered;
            std::mem::swap(&mut self.active, &mut self.new_active);
        }
        self.runs += 1;
        emetrics::BFS_RUNS.inc();
        Ok(levels)
    }
}

impl Default for BatchedBfsEngine {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::super::SpMSpVEngine;
    use super::*;
    use crate::semiring::{MinPlus, OrAnd};
    use tsv_sparse::gen::{
        geometric_graph, grid2d, random_sparse_vector, rmat, uniform_random, RmatConfig,
    };
    use tsv_sparse::reference::bfs_levels;

    fn bits(v: &SparseVector<f64>) -> (Vec<u32>, Vec<u64>) {
        (
            v.indices().to_vec(),
            v.values().iter().map(|x| x.to_bits()).collect(),
        )
    }

    #[test]
    fn batched_matches_sequential_bitwise_across_balances() {
        let a = uniform_random(400, 400, 5000, 3).to_csr();
        for opts in [
            SpMSpVOptions::default(),
            SpMSpVOptions {
                balance: Balance::binned(),
                ..Default::default()
            },
        ] {
            let mut seq = SpMSpVEngine::<PlusTimes>::from_csr_with(
                &a,
                TileConfig::default(),
                SpMSpVOptions {
                    kernel: crate::spmspv::KernelChoice::RowTile,
                    ..opts
                },
            )
            .unwrap();
            let mut batched =
                BatchedSpMSpVEngine::<PlusTimes>::from_csr_with(&a, TileConfig::default(), opts)
                    .unwrap();
            let xs: Vec<_> = (0..7)
                .map(|s| random_sparse_vector(400, [0.08, 0.01, 0.3][s as usize % 3], s))
                .collect();
            let (ys, report) = batched.multiply(&xs).unwrap();
            assert_eq!(report.batch, 7);
            for (q, x) in xs.iter().enumerate() {
                let (y_seq, _) = seq.multiply(x).unwrap();
                assert_eq!(bits(&ys[q]), bits(&y_seq), "lane {q}");
                assert_eq!(report.per_query[q].x_nnz, x.nnz());
                assert_eq!(report.per_query[q].y_nnz, y_seq.nnz());
            }
        }
    }

    #[test]
    fn batched_min_plus_and_or_and_agree_with_sequential() {
        let a = uniform_random(200, 200, 2500, 11).to_csr();
        let mut seq = SpMSpVEngine::<MinPlus>::from_csr(&a, TileConfig::default()).unwrap();
        let mut batched =
            BatchedSpMSpVEngine::<MinPlus>::from_csr(&a, TileConfig::default()).unwrap();
        let xs: Vec<_> = (0..3)
            .map(|s| {
                let v = random_sparse_vector(200, 0.05, s + 40);
                SparseVector::from_entries(200, v.indices().iter().map(|&i| (i, 1.0)).collect())
                    .unwrap()
            })
            .collect();
        let (ys, _) = batched.multiply(&xs).unwrap();
        for (q, x) in xs.iter().enumerate() {
            let (y_seq, _) = seq.multiply(x).unwrap();
            assert_eq!(ys[q], y_seq, "lane {q}");
        }

        let ab = CsrMatrix::from_parts(
            a.nrows(),
            a.ncols(),
            a.row_ptr().to_vec(),
            a.col_idx().to_vec(),
            vec![true; a.nnz()],
        )
        .unwrap();
        let mut seq = SpMSpVEngine::<OrAnd>::from_csr(&ab, TileConfig::default()).unwrap();
        let mut batched =
            BatchedSpMSpVEngine::<OrAnd>::from_csr(&ab, TileConfig::default()).unwrap();
        let xs: Vec<_> = (0..4)
            .map(|s| {
                let v = random_sparse_vector(200, 0.1, s + 80);
                SparseVector::from_entries(200, v.indices().iter().map(|&i| (i, true)).collect())
                    .unwrap()
            })
            .collect();
        let (ys, _) = batched.multiply(&xs).unwrap();
        for (q, x) in xs.iter().enumerate() {
            let (y_seq, _) = seq.multiply(x).unwrap();
            assert_eq!(ys[q], y_seq, "lane {q}");
        }
    }

    #[test]
    fn workspace_is_stable_at_fixed_width_and_handles_width_changes() {
        let a = uniform_random(300, 300, 4000, 5).to_csr();
        let mut engine =
            BatchedSpMSpVEngine::<PlusTimes>::from_csr(&a, TileConfig::default()).unwrap();
        let xs: Vec<_> = (0..4).map(|s| random_sparse_vector(300, 0.1, s)).collect();
        engine.multiply(&xs).unwrap();
        let fp = engine.scratch_fingerprint();
        let reshapes = engine.metrics().scratch_reshapes;
        for _ in 0..3 {
            engine.multiply(&xs).unwrap();
            assert_eq!(engine.scratch_fingerprint(), fp, "scratch moved at fixed B");
        }
        assert_eq!(engine.metrics().scratch_reshapes, reshapes);

        // Narrower batch reuses lanes; result still right.
        let (ys, report) = engine.multiply(&xs[..2]).unwrap();
        assert_eq!(report.batch, 2);
        assert_eq!(ys.len(), 2);
        let mut seq = SpMSpVEngine::<PlusTimes>::from_csr(&a, TileConfig::default()).unwrap();
        for (q, x) in xs[..2].iter().enumerate() {
            let (y_seq, _) = seq.multiply(x).unwrap();
            assert_eq!(bits(&ys[q]), bits(&y_seq), "lane {q} after shrink");
        }
    }

    #[test]
    fn empty_batch_and_empty_frontiers() {
        let a = uniform_random(100, 100, 800, 9).to_csr();
        let mut engine =
            BatchedSpMSpVEngine::<PlusTimes>::from_csr(&a, TileConfig::default()).unwrap();
        let (ys, report) = engine.multiply(&[]).unwrap();
        assert!(ys.is_empty());
        assert_eq!(report.batch, 0);

        let xs = vec![SparseVector::<f64>::zeros(100), SparseVector::zeros(100)];
        let (ys, _) = engine.multiply(&xs).unwrap();
        assert!(ys.iter().all(|y| y.nnz() == 0));
    }

    #[test]
    fn verify_option_proves_batched_plans() {
        let a = uniform_random(300, 300, 3000, 5).to_csr();
        for balance in [Balance::OneWarpPerRowTile, Balance::binned()] {
            let mut engine = BatchedSpMSpVEngine::<PlusTimes>::from_csr_with(
                &a,
                TileConfig::default(),
                SpMSpVOptions {
                    balance,
                    verify: true,
                    ..Default::default()
                },
            )
            .unwrap();
            let xs: Vec<_> = (0..5)
                .map(|s| random_sparse_vector(300, [0.2, 0.01][s as usize % 2], s))
                .collect();
            engine.multiply(&xs).unwrap();
            let report = engine.last_analysis().expect("verify records a report");
            assert!(report.is_proved(), "{report}");
            assert!(report.plan.contains("/b5"), "{}", report.plan);
        }
    }

    #[test]
    fn batched_rejects_mismatched_lane_dimensions() {
        let a = uniform_random(64, 64, 300, 1).to_csr();
        let mut engine =
            BatchedSpMSpVEngine::<PlusTimes>::from_csr(&a, TileConfig::default()).unwrap();
        let xs = vec![
            random_sparse_vector(64, 0.1, 1),
            random_sparse_vector(65, 0.1, 2),
        ];
        assert!(engine.multiply(&xs).is_err());
    }

    #[test]
    fn bfs_engine_matches_reference_levels_on_every_backend() {
        let a = geometric_graph(500, 4.0, 6).to_csr();
        let sources: Vec<usize> = (0..48).map(|i| (i * 9) % 500).collect();
        let mut reference: Option<Vec<Vec<i32>>> = None;
        for backend in [
            ExecBackend::model(),
            ExecBackend::native(Some(1)),
            ExecBackend::native(Some(4)),
        ] {
            let mut engine = BatchedBfsEngine::new();
            engine.set_backend(backend);
            let levels = engine.run(&a, &sources).unwrap();
            for (i, &s) in sources.iter().enumerate().step_by(11) {
                assert_eq!(levels[i], bfs_levels(&a, s).unwrap(), "source {s}");
            }
            match &reference {
                None => reference = Some(levels),
                Some(r) => assert_eq!(&levels, r, "levels differ across backends"),
            }
        }
    }

    #[test]
    fn bfs_engine_reuses_workspace_across_runs() {
        let a = grid2d(12, 12).to_csr().without_diagonal();
        let mut engine = BatchedBfsEngine::new();
        let l1 = engine.run(&a, &[0, 5, 77]).unwrap();
        let l2 = engine.run(&a, &[0, 5, 77]).unwrap();
        assert_eq!(l1, l2, "warm workspace changes nothing");
        assert_eq!(engine.runs(), 2);
        assert_eq!(engine.run(&a, &[]).unwrap().len(), 0);
        assert!(engine.run(&a, &[999]).is_err());
    }

    #[test]
    fn bfs_engine_handles_disconnected_and_duplicate_sources() {
        let a = rmat(RmatConfig::new(7, 6), 2).to_csr();
        let s = (0..a.nrows()).find(|&v| a.row_nnz(v) > 0).unwrap();
        let mut engine = BatchedBfsEngine::new();
        let levels = engine.run(&a, &[s, s, s]).unwrap();
        assert_eq!(levels[0], levels[1]);
        assert_eq!(levels[1], levels[2]);
        assert_eq!(levels[0], bfs_levels(&a, s).unwrap());
    }
}
