//! The tiled sparse matrix (§3.2.1).
//!
//! The matrix is cut into `nt × nt` sparse tiles. Non-empty tiles are
//! treated as the "nonzeros" of a tile-level CSR: `tile_row_ptr` delimits
//! the non-empty tiles of each *row tile* (a band of `nt` consecutive
//! rows), `tile_col` gives each tile's column-tile index, and `tile_ptr`
//! locates its entries. Inside a tile, entries are stored in a compact
//! local CSR whose row pointers fit in `u16` and column indices in `u8`
//! (for `nt = 16` the paper's packed byte encoding is also materialized).
//!
//! Tiles holding no more than [`TileConfig::extract_threshold`] entries are
//! not worth their metadata: their entries are *extracted* into a side COO
//! matrix processed by a separate kernel pass, exactly the hybrid scheme of
//! §3.2.1/§3.4.
//!
//! The container is generic over the value type (default `f64`) so the
//! semiring-generic driver can tile boolean or numeric matrices alike.
//! `T::default()` plays the role of the *structural* zero: dense payloads
//! pad with it, and `to_csr` drops it on reconstruction.

use super::layout::{pack16, tiles_for, TileConfig, TileFormat, TileSize};
use rayon::prelude::*;
use tsv_sparse::{CooMatrix, CsrMatrix, SparseError};

/// A sparse matrix in the paper's tiled format.
#[derive(Debug, Clone, PartialEq)]
pub struct TileMatrix<T = f64> {
    nrows: usize,
    ncols: usize,
    config: TileConfig,
    m_tiles: usize,
    n_tiles: usize,
    /// Tile-level CSR pointer: non-empty tiles of row tile `rt` are
    /// `tile_row_ptr[rt]..tile_row_ptr[rt + 1]`.
    tile_row_ptr: Vec<usize>,
    /// Column-tile index of each non-empty tile.
    tile_col: Vec<u32>,
    /// Entry offsets: tile `t` owns entries `tile_ptr[t]..tile_ptr[t + 1]`.
    tile_ptr: Vec<usize>,
    /// Intra-tile CSR row pointers, `nt + 1` per tile, relative to the
    /// tile's first entry.
    local_row_ptr: Vec<u16>,
    /// Intra-tile column index of each entry.
    local_col: Vec<u8>,
    /// Packed `(row << 4) | col` byte per entry, materialized when
    /// `nt == 16` (the paper's unsigned-char index compression).
    packed16: Option<Vec<u8>>,
    /// Entry values of CSR-format tiles, tile by tile in intra-tile CSR
    /// order (dense tiles keep their payload in `dense_vals`).
    vals: Vec<T>,
    /// Physical payload format of each stored tile.
    formats: Vec<TileFormat>,
    /// True nonzero count of each stored tile (dense tiles have no
    /// entries in `vals`).
    tile_nnz: Vec<u32>,
    /// Row-major `nt²` payloads of dense tiles, in tile order.
    dense_vals: Vec<T>,
    /// Slot of each dense tile in `dense_vals` (unused for CSR tiles).
    dense_slot: Vec<u32>,
    /// Row-tile index of each stored tile (inverse of `tile_row_ptr`).
    tile_row: Vec<u32>,
    /// Tile-level CSC *index*: `col_index_ptr[ct]..col_index_ptr[ct+1]`
    /// slices `col_index_tiles`, which lists the stored-tile ids of column
    /// tile `ct`. The vector-driven kernel walks tiles through this index
    /// without duplicating their contents.
    col_index_ptr: Vec<usize>,
    col_index_tiles: Vec<u32>,
    /// Entries of extracted very-sparse tiles, in global coordinates,
    /// sorted column-major so the vector-driven pass can skip columns with
    /// no `x` entry.
    extra: CooMatrix<T>,
    /// Column pointer over the (column-sorted) extracted entries:
    /// `extra_col_ptr[c]..extra_col_ptr[c+1]` are the entries of column `c`.
    extra_col_ptr: Vec<usize>,
}

/// Read-only view of one stored tile.
#[derive(Debug, Clone, Copy)]
pub struct TileView<'a, T = f64> {
    /// Column-tile index of this tile.
    pub col_tile: usize,
    /// True nonzero count of the tile.
    pub nnz: usize,
    /// Local CSR row pointers (`nt + 1` entries, relative); all zero for
    /// dense tiles.
    pub local_row_ptr: &'a [u16],
    /// Local column index per entry (empty for dense tiles).
    pub local_col: &'a [u8],
    /// Entry values (empty for dense tiles).
    pub vals: &'a [T],
    /// Row-major `nt × nt` payload when the tile is stored dense.
    pub dense: Option<&'a [T]>,
}

impl<'a, T> TileView<'a, T> {
    /// Number of nonzero entries in the tile.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// The tile's payload format.
    pub fn format(&self) -> TileFormat {
        if self.dense.is_some() {
            TileFormat::Dense
        } else {
            TileFormat::Csr
        }
    }

    /// Local column indices and values of intra-tile row `lr` (CSR tiles
    /// only; dense tiles return empty slices — read `dense` instead).
    #[inline]
    pub fn row(&self, lr: usize) -> (&'a [u8], &'a [T]) {
        let s = self.local_row_ptr[lr] as usize;
        let e = self.local_row_ptr[lr + 1] as usize;
        (&self.local_col[s..e], &self.vals[s..e])
    }
}

/// Per-row-tile partial build, merged sequentially afterwards.
struct RowTileBuild<T> {
    tile_col: Vec<u32>,
    tile_nnz: Vec<u32>,
    formats: Vec<TileFormat>,
    local_row_ptr: Vec<u16>,
    local_col: Vec<u8>,
    vals: Vec<T>,
    dense_vals: Vec<T>,
    extra: Vec<(u32, u32, T)>,
}

impl<T: Copy + PartialEq + Default + Send + Sync> TileMatrix<T> {
    /// Builds the tiled format from a CSR matrix.
    ///
    /// This is the *format conversion* step whose cost Figure 11 reports;
    /// it parallelizes over row tiles.
    ///
    /// ```
    /// use tsv_core::tile::{TileConfig, TileMatrix};
    ///
    /// let a = tsv_sparse::gen::banded(128, 6, 0.8, 1).to_csr();
    /// let tiled = TileMatrix::from_csr(&a, TileConfig::default()).unwrap();
    /// assert_eq!(tiled.nnz(), a.nnz());
    /// assert_eq!(tiled.to_csr(), a); // lossless
    /// ```
    pub fn from_csr(a: &CsrMatrix<T>, config: TileConfig) -> Result<Self, SparseError> {
        let nt = config.tile_size.nt();
        let nrows = a.nrows();
        let ncols = a.ncols();
        let m_tiles = tiles_for(nrows, nt);
        let n_tiles = tiles_for(ncols, nt);

        let parts: Vec<RowTileBuild<T>> = (0..m_tiles)
            .into_par_iter()
            .map(|rt| build_row_tile(a, rt, nt, config))
            .collect();

        // Stitch the partial builds together.
        let total_tiles: usize = parts.iter().map(|p| p.tile_col.len()).sum();
        let total_nnz: usize = parts.iter().map(|p| p.vals.len()).sum();
        let total_extra: usize = parts.iter().map(|p| p.extra.len()).sum();

        let mut tile_row_ptr = Vec::with_capacity(m_tiles + 1);
        let mut tile_col = Vec::with_capacity(total_tiles);
        let mut tile_ptr = Vec::with_capacity(total_tiles + 1);
        let mut formats = Vec::with_capacity(total_tiles);
        let mut tile_nnz = Vec::with_capacity(total_tiles);
        let mut dense_slot = Vec::with_capacity(total_tiles);
        let mut local_row_ptr = Vec::with_capacity(total_tiles * (nt + 1));
        let mut local_col = Vec::with_capacity(total_nnz);
        let mut vals = Vec::with_capacity(total_nnz);
        let mut dense_vals = Vec::new();
        let mut extra = CooMatrix::with_capacity(nrows, ncols, total_extra);

        tile_row_ptr.push(0);
        tile_ptr.push(0);
        let mut entry_off = 0usize;
        for p in parts {
            for (i, &ct) in p.tile_col.iter().enumerate() {
                tile_col.push(ct);
                formats.push(p.formats[i]);
                tile_nnz.push(p.tile_nnz[i]);
                // CSR tiles advance the entry cursor; dense tiles own a
                // dense slot instead.
                if p.formats[i] == TileFormat::Csr {
                    entry_off += p.tile_nnz[i] as usize;
                }
                // Dense slots are assigned in the second pass below.
                dense_slot.push(u32::MAX);
                tile_ptr.push(entry_off);
            }
            tile_row_ptr.push(tile_col.len());
            local_row_ptr.extend_from_slice(&p.local_row_ptr);
            local_col.extend_from_slice(&p.local_col);
            vals.extend_from_slice(&p.vals);
            dense_vals.extend_from_slice(&p.dense_vals);
            for (r, c, v) in p.extra {
                extra.push(r as usize, c as usize, v);
            }
        }
        // Second pass: assign dense slots in tile order (per-part dense
        // payloads were concatenated in the same order).
        {
            let mut slot = 0u32;
            for (t, f) in formats.iter().enumerate() {
                if *f == TileFormat::Dense {
                    dense_slot[t] = slot;
                    slot += 1;
                }
            }
            debug_assert_eq!(slot as usize * nt * nt, dense_vals.len());
        }

        // Column-sort the extracted entries and index them so the hybrid
        // pass is driven by the vector's nonzeros, like the tiled kernels.
        {
            let mut order: Vec<u32> = (0..extra.nnz() as u32).collect();
            let (rows_ref, cols_ref) = (extra.row_indices(), extra.col_indices());
            order.sort_by_key(|&i| (cols_ref[i as usize], rows_ref[i as usize]));
            let rows: Vec<u32> = order
                .iter()
                .map(|&i| extra.row_indices()[i as usize])
                .collect();
            let cols: Vec<u32> = order
                .iter()
                .map(|&i| extra.col_indices()[i as usize])
                .collect();
            let evals: Vec<T> = order.iter().map(|&i| extra.values()[i as usize]).collect();
            extra = CooMatrix::from_triplets(nrows, ncols, rows, cols, evals)
                .expect("permutation of valid entries stays valid");
        }
        let mut extra_col_ptr = vec![0usize; ncols + 1];
        for &c in extra.col_indices() {
            extra_col_ptr[c as usize + 1] += 1;
        }
        for i in 0..ncols {
            extra_col_ptr[i + 1] += extra_col_ptr[i];
        }

        let packed16 = if config.tile_size == TileSize::S16 {
            Some(pack_entries(&tile_ptr, &local_row_ptr, &local_col, nt))
        } else {
            None
        };

        // Inverse row map and column-tile index for the vector-driven
        // kernel: tiles listed per column tile, ordered by row tile.
        let mut tile_row = vec![0u32; tile_col.len()];
        for rt in 0..m_tiles {
            tile_row[tile_row_ptr[rt]..tile_row_ptr[rt + 1]].fill(rt as u32);
        }
        let mut col_index_ptr = vec![0usize; n_tiles + 1];
        for &ct in &tile_col {
            col_index_ptr[ct as usize + 1] += 1;
        }
        for i in 0..n_tiles {
            col_index_ptr[i + 1] += col_index_ptr[i];
        }
        let mut next = col_index_ptr.clone();
        let mut col_index_tiles = vec![0u32; tile_col.len()];
        for (t, &ct) in tile_col.iter().enumerate() {
            col_index_tiles[next[ct as usize]] = t as u32;
            next[ct as usize] += 1;
        }

        Ok(Self {
            nrows,
            ncols,
            config,
            m_tiles,
            n_tiles,
            tile_row_ptr,
            tile_col,
            tile_ptr,
            local_row_ptr,
            local_col,
            packed16,
            vals,
            formats,
            tile_nnz,
            dense_vals,
            dense_slot,
            tile_row,
            col_index_ptr,
            col_index_tiles,
            extra,
            extra_col_ptr,
        })
    }

    /// Number of rows of the logical matrix.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns of the logical matrix.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Construction parameters.
    pub fn config(&self) -> TileConfig {
        self.config
    }

    /// Tile edge length.
    pub fn nt(&self) -> usize {
        self.config.tile_size.nt()
    }

    /// Number of row tiles.
    pub fn m_tiles(&self) -> usize {
        self.m_tiles
    }

    /// Number of column tiles.
    pub fn n_tiles(&self) -> usize {
        self.n_tiles
    }

    /// Number of stored (non-extracted, non-empty) tiles.
    pub fn num_tiles(&self) -> usize {
        self.tile_col.len()
    }

    /// Entries held in tiles (excludes the extracted COO part).
    pub fn tiled_nnz(&self) -> usize {
        self.tile_nnz.iter().map(|&n| n as usize).sum()
    }

    /// Total nonzeros including the extracted part.
    pub fn nnz(&self) -> usize {
        self.tiled_nnz() + self.extra.nnz()
    }

    /// Payload format of stored tile `t`.
    pub fn tile_format(&self, t: usize) -> TileFormat {
        self.formats[t]
    }

    /// Number of stored tiles using the dense payload format.
    pub fn dense_tiles(&self) -> usize {
        self.dense_slot.iter().filter(|&&s| s != u32::MAX).count()
    }

    /// The extracted very-sparse entries (column-sorted).
    pub fn extra(&self) -> &CooMatrix<T> {
        &self.extra
    }

    /// The extracted entries of column `c`, as `(rows, values)` — the
    /// vector-driven access path of the hybrid pass.
    #[inline]
    pub fn extra_col(&self, c: usize) -> (&[u32], &[T]) {
        let (s, e) = (self.extra_col_ptr[c], self.extra_col_ptr[c + 1]);
        (&self.extra.row_indices()[s..e], &self.extra.values()[s..e])
    }

    /// Tile-level CSR pointer (length `m_tiles + 1`).
    pub fn tile_row_ptr(&self) -> &[usize] {
        &self.tile_row_ptr
    }

    /// Column-tile index array, parallel to stored tiles.
    pub fn tile_col(&self) -> &[u32] {
        &self.tile_col
    }

    /// The packed one-byte indices (only for 16×16 tiles).
    pub fn packed16(&self) -> Option<&[u8]> {
        self.packed16.as_deref()
    }

    /// View of stored tile `t`.
    #[inline]
    pub fn tile(&self, t: usize) -> TileView<'_, T> {
        let nt = self.nt();
        let (s, e) = (self.tile_ptr[t], self.tile_ptr[t + 1]);
        let dense = match self.dense_slot[t] {
            u32::MAX => None,
            slot => {
                let base = slot as usize * nt * nt;
                Some(&self.dense_vals[base..base + nt * nt])
            }
        };
        TileView {
            col_tile: self.tile_col[t] as usize,
            nnz: self.tile_nnz[t] as usize,
            local_row_ptr: &self.local_row_ptr[t * (nt + 1)..(t + 1) * (nt + 1)],
            local_col: &self.local_col[s..e],
            vals: &self.vals[s..e],
            dense,
        }
    }

    /// Indices of the stored tiles of row tile `rt`.
    #[inline]
    pub fn row_tile_range(&self, rt: usize) -> std::ops::Range<usize> {
        self.tile_row_ptr[rt]..self.tile_row_ptr[rt + 1]
    }

    /// Row-tile index of stored tile `t`.
    #[inline]
    pub fn tile_row_of(&self, t: usize) -> usize {
        self.tile_row[t] as usize
    }

    /// Stored-tile ids of column tile `ct`, in row-tile order — the lookup
    /// path of the vector-driven (CSC-form) kernel.
    #[inline]
    pub fn col_tiles(&self, ct: usize) -> &[u32] {
        &self.col_index_tiles[self.col_index_ptr[ct]..self.col_index_ptr[ct + 1]]
    }

    /// Reconstructs the logical CSR matrix (tiles plus extracted part);
    /// used by tests to prove the conversion lossless.
    pub fn to_csr(&self) -> CsrMatrix<T>
    where
        T: std::ops::Add<Output = T>,
    {
        let nt = self.nt();
        let mut coo = CooMatrix::with_capacity(self.nrows, self.ncols, self.nnz());
        for rt in 0..self.m_tiles {
            for t in self.row_tile_range(rt) {
                let view = self.tile(t);
                let base_r = rt * nt;
                let base_c = view.col_tile * nt;
                match view.dense {
                    Some(d) => {
                        // Dense payloads reconstruct their nonzeros (any
                        // explicitly stored structural zeros are dropped by
                        // design).
                        for lr in 0..nt {
                            for lc in 0..nt {
                                let v = d[lr * nt + lc];
                                if v != T::default() {
                                    coo.push(base_r + lr, base_c + lc, v);
                                }
                            }
                        }
                    }
                    None => {
                        for lr in 0..nt {
                            let (cols, vals) = view.row(lr);
                            for (&lc, &v) in cols.iter().zip(vals) {
                                coo.push(base_r + lr, base_c + lc as usize, v);
                            }
                        }
                    }
                }
            }
        }
        for (r, c, v) in self.extra.iter() {
            coo.push(r, c, v);
        }
        coo.to_csr()
    }

    /// Bytes of storage used by the tiled structure (the space numbers the
    /// paper's storage discussion relies on).
    pub fn storage_bytes(&self) -> usize {
        let vb = std::mem::size_of::<T>();
        self.tile_row_ptr.len() * 8
            + self.tile_col.len() * 4
            + self.tile_ptr.len() * 8
            + self.local_row_ptr.len() * 2
            + self.local_col.len()
            + self.packed16.as_ref().map_or(0, std::vec::Vec::len)
            + self.vals.len() * vb
            + self.dense_vals.len() * vb
            + self.formats.len()
            + self.tile_nnz.len() * 4
            + self.dense_slot.len() * 4
            + self.tile_row.len() * 4
            + self.col_index_ptr.len() * 8
            + self.col_index_tiles.len() * 4
            + self.extra_col_ptr.len() * 8
            + self.extra.nnz() * (4 + 4 + vb)
    }
}

/// Gathers, buckets and locally compresses the tiles of one row tile,
/// choosing each tile's payload format (extracted / CSR / dense).
fn build_row_tile<T: Copy + Default>(
    a: &CsrMatrix<T>,
    rt: usize,
    nt: usize,
    config: TileConfig,
) -> RowTileBuild<T> {
    let extract_threshold = config.extract_threshold;
    // Fill level at which the dense payload takes over.
    let dense_nnz = (config.dense_threshold * (nt * nt) as f64).ceil() as usize;
    let row_start = rt * nt;
    let row_end = (row_start + nt).min(a.nrows());

    // (col_tile, local_row, local_col, val) for every entry in the band.
    let mut entries: Vec<(u32, u8, u8, T)> = Vec::new();
    for r in row_start..row_end {
        let (cols, vals) = a.row(r);
        let lr = (r - row_start) as u8;
        for (&c, &v) in cols.iter().zip(vals) {
            entries.push(((c as usize / nt) as u32, lr, (c as usize % nt) as u8, v));
        }
    }
    // Within each row entries are already column-sorted; a stable sort by
    // column tile leaves (lr, lc) order intact per tile... but rows are
    // interleaved, so sort by the full key.
    entries.sort_unstable_by_key(|&(ct, lr, lc, _)| (ct, lr, lc));

    let mut out = RowTileBuild {
        tile_col: Vec::new(),
        tile_nnz: Vec::new(),
        formats: Vec::new(),
        local_row_ptr: Vec::new(),
        local_col: Vec::new(),
        vals: Vec::new(),
        dense_vals: Vec::new(),
        extra: Vec::new(),
    };

    let mut i = 0usize;
    while i < entries.len() {
        let ct = entries[i].0;
        let mut j = i;
        while j < entries.len() && entries[j].0 == ct {
            j += 1;
        }
        let tile_entries = &entries[i..j];
        if tile_entries.len() <= extract_threshold {
            for &(_, lr, lc, v) in tile_entries {
                out.extra.push((
                    (row_start + lr as usize) as u32,
                    (ct as usize * nt + lc as usize) as u32,
                    v,
                ));
            }
        } else if tile_entries.len() >= dense_nnz.max(1) {
            // Dense payload: nt² values, zero-filled, no indices.
            out.tile_col.push(ct);
            out.tile_nnz.push(tile_entries.len() as u32);
            out.formats.push(TileFormat::Dense);
            out.local_row_ptr.extend(std::iter::repeat_n(0u16, nt + 1));
            let base = out.dense_vals.len();
            out.dense_vals
                .extend(std::iter::repeat_n(T::default(), nt * nt));
            for &(_, lr, lc, v) in tile_entries {
                out.dense_vals[base + lr as usize * nt + lc as usize] = v;
            }
        } else {
            out.tile_col.push(ct);
            out.tile_nnz.push(tile_entries.len() as u32);
            out.formats.push(TileFormat::Csr);
            // Local CSR: count per local row, prefix-sum, then append
            // entries (already in (lr, lc) order).
            let mut ptr = vec![0u16; nt + 1];
            for &(_, lr, _, _) in tile_entries {
                ptr[lr as usize + 1] += 1;
            }
            for k in 0..nt {
                ptr[k + 1] += ptr[k];
            }
            out.local_row_ptr.extend_from_slice(&ptr);
            for &(_, _, lc, v) in tile_entries {
                out.local_col.push(lc);
                out.vals.push(v);
            }
        }
        i = j;
    }
    out
}

/// Materializes the packed byte index of every entry for 16×16 tiles.
fn pack_entries(tile_ptr: &[usize], local_row_ptr: &[u16], local_col: &[u8], nt: usize) -> Vec<u8> {
    debug_assert_eq!(nt, 16);
    let nnz = *tile_ptr.last().unwrap_or(&0);
    let mut packed = vec![0u8; nnz];
    let num_tiles = tile_ptr.len().saturating_sub(1);
    for t in 0..num_tiles {
        let base = tile_ptr[t];
        let ptr = &local_row_ptr[t * (nt + 1)..(t + 1) * (nt + 1)];
        for lr in 0..nt {
            for k in ptr[lr] as usize..ptr[lr + 1] as usize {
                packed[base + k] = pack16(lr, local_col[base + k] as usize);
            }
        }
    }
    packed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tile::layout::unpack16;
    // TileFormat is re-exported through super::*; TileConfig::default()
    // carries the 0.75 dense threshold used below.
    use tsv_sparse::gen::{banded, uniform_random};

    fn cfg(ts: TileSize, extract: usize) -> TileConfig {
        TileConfig {
            tile_size: ts,
            extract_threshold: extract,
            ..Default::default()
        }
    }

    #[test]
    fn roundtrip_banded_all_tile_sizes() {
        let a = banded(100, 6, 0.7, 3).to_csr();
        for ts in TileSize::all() {
            let tm = TileMatrix::from_csr(&a, cfg(ts, 0)).unwrap();
            assert_eq!(tm.to_csr(), a, "tile size {ts}");
            assert_eq!(tm.nnz(), a.nnz());
        }
    }

    #[test]
    fn roundtrip_with_extraction() {
        let a = uniform_random(200, 200, 900, 5).to_csr();
        let tm = TileMatrix::from_csr(&a, cfg(TileSize::S16, 2)).unwrap();
        assert!(
            tm.extra().nnz() > 0,
            "uniform random should have sparse tiles"
        );
        assert_eq!(tm.to_csr(), a);
        assert_eq!(tm.tiled_nnz() + tm.extra().nnz(), a.nnz());
    }

    #[test]
    fn extraction_threshold_moves_small_tiles() {
        // A matrix whose tiles each hold exactly one entry.
        let mut coo = CooMatrix::new(64, 64);
        for t in 0..4 {
            coo.push(t * 16, t * 16, 1.0);
        }
        let a = coo.to_csr();
        let tm = TileMatrix::from_csr(&a, cfg(TileSize::S16, 2)).unwrap();
        assert_eq!(tm.num_tiles(), 0);
        assert_eq!(tm.extra().nnz(), 4);

        let keep = TileMatrix::from_csr(&a, cfg(TileSize::S16, 0)).unwrap();
        assert_eq!(keep.num_tiles(), 4);
        assert_eq!(keep.extra().nnz(), 0);
    }

    #[test]
    fn tile_views_expose_local_csr() {
        // 2x2 tiles over a 4x4 matrix with nt = 2.
        // [1 2 | 0 0]
        // [0 3 | 0 0]
        // [0 0 | 0 4]
        // [5 0 | 6 0]
        let mut coo = CooMatrix::new(4, 4);
        for &(r, c, v) in &[
            (0, 0, 1.0),
            (0, 1, 2.0),
            (1, 1, 3.0),
            (2, 3, 4.0),
            (3, 0, 5.0),
            (3, 2, 6.0),
        ] {
            coo.push(r, c, v);
        }
        let a = coo.to_csr();
        // nt=16 would make one tile; use S16 but a 4x4 matrix is one tile.
        let tm = TileMatrix::from_csr(&a, cfg(TileSize::S16, 0)).unwrap();
        assert_eq!(tm.m_tiles(), 1);
        assert_eq!(tm.num_tiles(), 1);
        let view = tm.tile(0);
        assert_eq!(view.nnz(), 6);
        let (cols, vals) = view.row(0);
        assert_eq!(cols, &[0, 1]);
        assert_eq!(vals, &[1.0, 2.0]);
        let (cols, _) = view.row(3);
        assert_eq!(cols, &[0, 2]);
    }

    #[test]
    fn packed16_matches_local_indices() {
        let a = banded(80, 5, 0.6, 7).to_csr();
        let tm = TileMatrix::from_csr(&a, cfg(TileSize::S16, 0)).unwrap();
        let packed = tm.packed16().expect("S16 materializes packed indices");
        // Packed bytes cover the CSR-format entries (dense tiles carry no
        // per-entry indices at all).
        assert_eq!(packed.len(), tm.vals.len());
        // Cross-check a few tiles entry by entry.
        for t in 0..tm.num_tiles().min(5) {
            let view = tm.tile(t);
            let base = tm.tile_ptr[t];
            for lr in 0..16 {
                let s = view.local_row_ptr[lr] as usize;
                let e = view.local_row_ptr[lr + 1] as usize;
                for k in s..e {
                    let (pr, pc) = unpack16(packed[base + k]);
                    assert_eq!(pr, lr);
                    assert_eq!(pc, view.local_col[k] as usize);
                }
            }
        }
    }

    #[test]
    fn no_packed_for_larger_tiles() {
        let a = banded(80, 5, 0.6, 7).to_csr();
        let tm = TileMatrix::from_csr(&a, cfg(TileSize::S32, 0)).unwrap();
        assert!(tm.packed16().is_none());
    }

    #[test]
    fn ragged_edges_handled() {
        // 33x33 with nt = 16 → 3x3 tile grid with ragged last row/col.
        let a = banded(33, 3, 1.0, 1).to_csr();
        let tm = TileMatrix::from_csr(&a, cfg(TileSize::S16, 0)).unwrap();
        assert_eq!(tm.m_tiles(), 3);
        assert_eq!(tm.n_tiles(), 3);
        assert_eq!(tm.to_csr(), a);
    }

    #[test]
    fn empty_matrix_has_no_tiles() {
        let a = CsrMatrix::<f64>::zeros(50, 50);
        let tm = TileMatrix::from_csr(&a, cfg(TileSize::S16, 2)).unwrap();
        assert_eq!(tm.num_tiles(), 0);
        assert_eq!(tm.nnz(), 0);
        assert_eq!(tm.to_csr().nnz(), 0);
    }

    #[test]
    fn banded_matrix_tiles_hug_the_diagonal() {
        let a = banded(128, 4, 1.0, 1).to_csr();
        let tm = TileMatrix::from_csr(&a, cfg(TileSize::S16, 0)).unwrap();
        for rt in 0..tm.m_tiles() {
            for t in tm.row_tile_range(rt) {
                let ct = tm.tile(t).col_tile;
                assert!(ct.abs_diff(rt) <= 1, "tile ({rt},{ct}) off the band");
            }
        }
    }

    #[test]
    fn column_index_lists_every_tile_once() {
        let a = uniform_random(150, 150, 3000, 8).to_csr();
        let tm = TileMatrix::from_csr(&a, cfg(TileSize::S16, 0)).unwrap();
        let mut seen = vec![false; tm.num_tiles()];
        for ct in 0..tm.n_tiles() {
            let mut prev_rt = None;
            for &t in tm.col_tiles(ct) {
                let t = t as usize;
                assert!(!seen[t], "tile {t} listed twice");
                seen[t] = true;
                assert_eq!(tm.tile(t).col_tile, ct);
                // Within a column, tiles appear in increasing row-tile order.
                let rt = tm.tile_row_of(t);
                if let Some(p) = prev_rt {
                    assert!(rt > p);
                }
                prev_rt = Some(rt);
            }
        }
        assert!(seen.iter().all(|&s| s), "column index missed a tile");
    }

    #[test]
    fn tile_row_of_matches_row_ranges() {
        let a = banded(120, 5, 0.8, 2).to_csr();
        let tm = TileMatrix::from_csr(&a, cfg(TileSize::S32, 0)).unwrap();
        for rt in 0..tm.m_tiles() {
            for t in tm.row_tile_range(rt) {
                assert_eq!(tm.tile_row_of(t), rt);
            }
        }
    }

    #[test]
    fn dense_tiles_appear_on_full_bands() {
        // fill = 1.0 makes diagonal tiles completely full.
        let a = banded(96, 16, 1.0, 1).to_csr();
        let tm = TileMatrix::from_csr(&a, TileConfig::default()).unwrap();
        assert!(tm.dense_tiles() > 0, "full band should produce dense tiles");
        assert_eq!(tm.to_csr(), a, "dense roundtrip");
        // Every tile's reported format matches its view.
        for t in 0..tm.num_tiles() {
            assert_eq!(tm.tile(t).format(), tm.tile_format(t));
            if tm.tile_format(t) == TileFormat::Dense {
                let view = tm.tile(t);
                assert!(view.vals.is_empty());
                let d = view.dense.unwrap();
                assert_eq!(d.len(), 16 * 16);
                assert_eq!(
                    d.iter().filter(|&&v| v != 0.0).count(),
                    view.nnz(),
                    "dense payload nnz mismatch"
                );
            }
        }
    }

    #[test]
    fn dense_threshold_above_one_disables_dense_tiles() {
        let a = banded(96, 16, 1.0, 1).to_csr();
        let cfg = TileConfig {
            dense_threshold: 1.5,
            ..Default::default()
        };
        let tm = TileMatrix::from_csr(&a, cfg).unwrap();
        assert_eq!(tm.dense_tiles(), 0);
        assert_eq!(tm.to_csr(), a);
    }

    #[test]
    fn aggressive_dense_threshold_roundtrips() {
        // Threshold 0.1 turns most banded tiles dense.
        let a = banded(120, 8, 0.7, 9).to_csr();
        let cfg = TileConfig {
            dense_threshold: 0.1,
            ..Default::default()
        };
        let tm = TileMatrix::from_csr(&a, cfg).unwrap();
        assert!(tm.dense_tiles() * 2 > tm.num_tiles());
        assert_eq!(tm.to_csr(), a);
        assert_eq!(tm.nnz(), a.nnz());
    }

    #[test]
    fn mixed_formats_within_one_row_tile() {
        // A full tile next to a sparse one in the same row tile.
        let mut coo = CooMatrix::new(16, 48);
        for r in 0..16 {
            for c in 0..16 {
                coo.push(r, c, (r * 16 + c + 1) as f64);
            }
        }
        coo.push(3, 40, 7.0);
        coo.push(5, 41, 8.0);
        coo.push(9, 42, 9.0);
        coo.push(11, 43, 10.0);
        let a = coo.to_csr();
        let tm = TileMatrix::from_csr(&a, cfg(TileSize::S16, 0)).unwrap();
        assert_eq!(tm.num_tiles(), 2);
        assert_eq!(tm.tile_format(0), TileFormat::Dense);
        assert_eq!(tm.tile_format(1), TileFormat::Csr);
        assert_eq!(tm.to_csr(), a);
    }

    #[test]
    fn storage_bytes_nonzero_and_sane() {
        let a = banded(100, 6, 0.7, 3).to_csr();
        let tm = TileMatrix::from_csr(&a, cfg(TileSize::S16, 2)).unwrap();
        let bytes = tm.storage_bytes();
        assert!(bytes >= tm.tiled_nnz() * 9);
        assert!(bytes < a.nnz() * 64, "storage estimate implausibly large");
    }

    #[test]
    fn boolean_matrix_tiles_and_roundtrips() {
        // Pattern-only matrices (OrAnd semiring) tile with the same code;
        // `false` is the structural zero.
        let f = banded(40, 3, 1.0, 2).to_csr();
        let (rp, ci) = (f.row_ptr().to_vec(), f.col_idx().to_vec());
        let vals = vec![true; ci.len()];
        let a = CsrMatrix::from_parts(40, 40, rp, ci, vals).unwrap();
        let tm = TileMatrix::from_csr(&a, cfg(TileSize::S16, 1)).unwrap();
        assert_eq!(tm.nnz(), a.nnz());
        // `to_csr` needs `T: Add`; reconstruct coordinates by hand instead.
        let nt = tm.nt();
        let mut got: Vec<(usize, usize)> = Vec::new();
        for rt in 0..tm.m_tiles() {
            for t in tm.row_tile_range(rt) {
                let view = tm.tile(t);
                if let Some(d) = view.dense {
                    for lr in 0..nt {
                        for lc in 0..nt {
                            if d[lr * nt + lc] {
                                got.push((rt * nt + lr, view.col_tile * nt + lc));
                            }
                        }
                    }
                } else {
                    for lr in 0..nt {
                        let (cols, _) = view.row(lr);
                        for &lc in cols {
                            got.push((rt * nt + lr, view.col_tile * nt + lc as usize));
                        }
                    }
                }
            }
        }
        for (r, c, v) in tm.extra().iter() {
            assert!(v);
            got.push((r, c));
        }
        got.sort_unstable();
        let want: Vec<(usize, usize)> = a.iter().map(|(r, c, _)| (r, c)).collect();
        assert_eq!(got, want);
    }
}
