//! SIMT execution substrate.
//!
//! The paper's kernels are CUDA warp programs on NVIDIA Ampere GPUs. This
//! crate is the substitution that lets the whole system run and be measured
//! without a GPU:
//!
//! * [`grid`] — kernel launches: a grid of *warps* executed in parallel over
//!   CPU threads (rayon). A warp is the paper's minimum scheduling unit
//!   (one warp per row tile / per frontier chunk), so parallel structure and
//!   load balancing behave like the CUDA code.
//! * [`warp`] — warp-level primitives the kernels use: `__shfl_down_sync`
//!   style reductions, ballots, and per-lane iteration, with the same
//!   lock-step semantics.
//! * [`atomic`] — the atomic global-memory operations of the paper's
//!   Algorithms 5–7 (`atomicOr`, atomic f64 add) over plain vectors.
//! * [`backend`] — the substrate as a trait: the modeled device above, or
//!   a native CPU backend running the same kernels as real parallel code
//!   on its own thread pool (honest wall time, no model).
//! * [`stats`] — per-kernel work counters (global memory traffic, flops,
//!   atomics, warp count) aggregated across the grid.
//! * [`device`] + [`model`] — the two GPUs of the paper (RTX 3060 / 3090) as
//!   analytic roofline configurations, turning counted work into an
//!   estimated device time. Figure 7's cross-device comparison uses this.
//!
//! Wall-clock time of the CPU execution and modeled device time are both
//! reported by the harness; relative orderings between algorithms come from
//! the counted work either way.
//!
//! [`analyze`] is the plan-time counterpart to the dynamic [`sanitize`]
//! layer: symbolic per-warp access footprints extracted from launch plans,
//! with race-freedom and merge-determinism obligations discharged before
//! any kernel runs.

#![forbid(unsafe_code)]

pub mod analyze;
pub mod atomic;
pub mod backend;
pub mod device;
pub mod grid;
pub mod json;
pub mod metrics;
pub mod model;
pub mod profile;
pub mod sanitize;
pub mod stats;
pub mod trace;
pub mod warp;

pub use analyze::{
    AccessMode, AtomicKind, BufferUse, Footprint, LaunchSummary, MergeSpec, Obligation,
    ObligationKind, PlanError, PlanReport, Verdict,
};
pub use backend::{Backend, BackendKind, ExecBackend, ModelBackend, NativeBackend};
pub use device::{DeviceConfig, RTX_3060, RTX_3090};
pub use grid::{
    launch, launch_binned, launch_over_chunks, launch_over_worklist, replay_check, with_schedule,
    Assignment, BinPlan, ReplayReport, SchedulePolicy,
};
pub use metrics::MetricsRegistry;
pub use profile::Profiler;
pub use sanitize::Sanitizer;
pub use stats::KernelStats;
pub use trace::Tracer;
pub use warp::{WarpCtx, WARP_SIZE};
