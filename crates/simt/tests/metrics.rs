//! Integration tests of the metrics registry: histogram bucket boundaries
//! under proptest, lossless concurrent increments through the native
//! backend's rayon pool, and exposition round-trips (Prometheus text
//! re-validated, JSON re-parsed with the crate's own parser).

use proptest::prelude::*;
use tsv_simt::json::JsonValue;
use tsv_simt::metrics::{
    series, validate_prometheus_text, Histogram, MetricsRegistry, HIST_BUCKETS,
};
use tsv_simt::{Backend as _, NativeBackend};

proptest! {
    /// Bucket boundaries: value 0 lands in bucket 0; any v > 0 lands in
    /// the unique bucket k with 2^(k-1) <= v < 2^k (saturating at the
    /// open-ended last bucket), and the bucket's inclusive upper bound
    /// brackets it. Shifting a uniform word right by a uniform amount
    /// gives log-uniform values, so every bucket gets exercised.
    #[test]
    fn bucket_index_brackets_every_value(raw in 0u64..u64::MAX, shift in 0u32..64u32) {
        let v = raw >> shift;
        let k = Histogram::bucket_index(v);
        prop_assert!(k < HIST_BUCKETS);
        if v == 0 {
            prop_assert_eq!(k, 0);
        } else if k < HIST_BUCKETS - 1 {
            // Lower edge: bucket k >= 1 starts at 2^(k-1).
            prop_assert!(v >= 1u64 << (k - 1), "v={v} below bucket {k}");
            // Upper edge: inclusive bound is 2^k - 1.
            let bound = Histogram::bucket_bound(k).unwrap();
            prop_assert!(v <= bound, "v={v} above bound {bound} of bucket {k}");
            if k >= 1 {
                let below = Histogram::bucket_bound(k - 1).unwrap();
                prop_assert!(v > below, "v={v} not above bucket {}'s bound {below}", k - 1);
            }
        } else {
            // The last bucket is open-ended.
            prop_assert_eq!(Histogram::bucket_bound(k), None);
            prop_assert!(v > Histogram::bucket_bound(HIST_BUCKETS - 2).unwrap());
        }
    }

    /// Observing any set of values preserves exact count and sum, and the
    /// per-bucket counts total the observation count.
    #[test]
    fn observations_are_conserved(values in proptest::collection::vec(0u64..u64::MAX, 0..64usize)) {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("t_conserve");
        let mut expect_sum = 0u64;
        for &v in &values {
            h.observe(v);
            expect_sum = expect_sum.wrapping_add(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.sum(), expect_sum);
        let total: u64 = h.bucket_counts().iter().sum();
        prop_assert_eq!(total, values.len() as u64);
    }

    /// Adjacent bucket bounds are strictly increasing, so the cumulative
    /// `le` series the Prometheus exposition emits is well ordered.
    #[test]
    fn bucket_bounds_strictly_increase(i in 0usize..HIST_BUCKETS - 2) {
        let a = Histogram::bucket_bound(i).unwrap();
        let b = Histogram::bucket_bound(i + 1).unwrap();
        prop_assert!(a < b);
    }
}

/// Increments issued from inside the native backend's rayon pool are
/// lossless: warps run on pool threads concurrently, and the relaxed
/// atomics must still account for every event exactly.
#[test]
fn native_pool_increments_are_lossless() {
    let reg = MetricsRegistry::new();
    let c = reg.counter("t_pool_warps");
    let h = reg.histogram("t_pool_obs");
    let backend = NativeBackend::new(Some(4));

    let launches = 16usize;
    let warps = 64usize;
    for _ in 0..launches {
        backend.launch(warps, |_ctx| {
            c.inc();
            h.observe(3);
        });
    }
    assert_eq!(c.get(), (launches * warps) as u64);
    assert_eq!(h.count(), (launches * warps) as u64);
    assert_eq!(h.sum(), 3 * (launches * warps) as u64);
    // All observations of 3 land in one bucket.
    let counts = h.bucket_counts();
    assert_eq!(
        counts[Histogram::bucket_index(3)],
        (launches * warps) as u64
    );

    // The backend itself recorded the launches in the process-wide
    // registry under the native label (>= because other tests in this
    // binary share the global registry).
    let text = tsv_simt::metrics::global().prometheus_text();
    let needle = format!(
        "{} ",
        series("tsv_simt_launches_total", &[("backend", "native")])
    );
    let recorded: u64 = text
        .lines()
        .find_map(|l| l.strip_prefix(&needle))
        .and_then(|v| v.trim().parse::<f64>().ok())
        .map(|v| v as u64)
        .expect("native launch counter exported");
    assert!(recorded >= launches as u64, "{recorded} < {launches}");
}

/// The per-format kernel instruments keep the registry's disabled-is-free
/// contract: with the registry off, incrementing the format counters and
/// setting the padding gauge costs one branch and records nothing.
#[test]
fn format_metrics_disabled_is_free() {
    use tsv_simt::metrics::FormatMetrics;
    let reg = MetricsRegistry::new();
    let fm = FormatMetrics::in_registry(&reg);
    reg.set_enabled(false);
    fm.launches_tilecsr.inc();
    fm.launches_sell.inc();
    fm.sell_padding_ratio.set(1.7);
    assert_eq!(fm.launches_tilecsr.get(), 0);
    assert_eq!(fm.launches_sell.get(), 0);
    assert_eq!(fm.sell_padding_ratio.get(), 0.0);

    reg.set_enabled(true);
    fm.launches_sell.inc();
    fm.sell_padding_ratio.set(1.25);
    assert_eq!(fm.launches_sell.get(), 1);
    assert_eq!(fm.sell_padding_ratio.get(), 1.25);
    // Both label values of the launch counter and the gauge are distinct
    // series in the exposition.
    let text = reg.prometheus_text();
    assert!(
        text.contains("tsv_core_kernel_format_launches_total{format=\"sell\"}"),
        "{text}"
    );
    assert!(
        text.contains("tsv_core_kernel_format_launches_total{format=\"tilecsr\"}"),
        "{text}"
    );
    assert!(text.contains("tsv_core_sell_padding_ratio"), "{text}");
}

/// The Prometheus text exposition round-trips through the validator and
/// the JSON export through the crate's own parser, with matching figures.
#[test]
fn expositions_round_trip() {
    let reg = MetricsRegistry::new();
    reg.counter(&series("t_requests_total", &[("code", "200")]))
        .add(7);
    reg.gauge("t_depth").set(2.5);
    reg.gauge("t_depth").set(1.0);
    let h = reg.histogram("t_latency");
    for v in [0, 1, 5, 1000, u64::MAX] {
        h.observe(v);
    }

    let text = reg.prometheus_text();
    let check = validate_prometheus_text(&text).expect("exposition must validate");
    // counter + gauge + gauge's high-water companion + histogram.
    assert_eq!(check.families, 4);
    // 1 counter sample, 2 gauge samples, 5 cumulative buckets + sum + count.
    assert_eq!(check.series, 10);
    assert_eq!(reg.series_count(), 3);

    let v = tsv_simt::json::parse(&reg.to_json()).expect("json export must parse");
    let counters = v.get("counters").unwrap().as_array().unwrap();
    assert_eq!(counters.len(), 1);
    assert_eq!(
        counters[0].get("value").and_then(JsonValue::as_u64),
        Some(7)
    );
    let gauges = v.get("gauges").unwrap().as_array().unwrap();
    assert_eq!(
        gauges[0].get("value").and_then(JsonValue::as_f64),
        Some(1.0)
    );
    assert_eq!(
        gauges[0].get("high_water").and_then(JsonValue::as_f64),
        Some(2.5)
    );
    let hists = v.get("histograms").unwrap().as_array().unwrap();
    assert_eq!(hists[0].get("count").and_then(JsonValue::as_u64), Some(5));
    let buckets = hists[0].get("buckets").unwrap().as_array().unwrap();
    let total: u64 = buckets
        .iter()
        .map(|b| b.get("count").and_then(JsonValue::as_u64).unwrap())
        .sum();
    assert_eq!(total, 5);
}
