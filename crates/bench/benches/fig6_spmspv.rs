//! Figure 6 bench: SpMSpV throughput of the four algorithms across the
//! four vector sparsities of the paper (random vectors, seed 1).
//!
//! Run `cargo bench --bench fig6_spmspv`; the `repro fig6` binary prints
//! the same comparison with GFlops and speedup aggregation over the full
//! representative suite.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tsv_baselines::{bucket_spmspv, tile_spmv, BsrMatrix};
use tsv_core::exec::SpMSpVEngine;
use tsv_core::semiring::PlusTimes;
use tsv_core::spmspv::tile_spmspv;
use tsv_core::tile::{TileConfig, TileMatrix};
use tsv_sparse::gen::random_sparse_vector;
use tsv_sparse::suite::{by_name, SuiteScale};

fn bench_fig6(c: &mut Criterion) {
    // Three structure classes: banded FEM, power-law web, road network.
    for name in ["cant", "in-2004", "roadNet-TX"] {
        let entry = by_name(name, SuiteScale::Tiny).expect("suite matrix");
        let a = entry.matrix;
        let n = a.ncols();
        let tiled = TileMatrix::from_csr(&a, TileConfig::default()).unwrap();
        let bsr = BsrMatrix::from_csr(&a, 4).unwrap();
        let csc = a.to_csc();
        // Same operator through the execution-plan layer: scratch is built
        // once and reused across every timed call.
        let mut engine = SpMSpVEngine::<PlusTimes>::from_csr(&a, TileConfig::default()).unwrap();

        let mut group = c.benchmark_group(format!("fig6/{name}"));
        group.sample_size(10);
        group.warm_up_time(std::time::Duration::from_millis(500));
        group.measurement_time(std::time::Duration::from_millis(1500));
        for sp in [0.1, 0.01, 0.001, 0.0001] {
            let x = random_sparse_vector(n, sp, 1);
            let xd = x.to_dense();

            group.bench_with_input(BenchmarkId::new("TileSpMSpV", sp), &sp, |b, _| {
                b.iter(|| black_box(tile_spmspv(&tiled, &x).unwrap()));
            });
            group.bench_with_input(BenchmarkId::new("TileSpMSpV-engine", sp), &sp, |b, _| {
                b.iter(|| black_box(engine.multiply(&x).unwrap()));
            });
            group.bench_with_input(BenchmarkId::new("TileSpMV", sp), &sp, |b, _| {
                b.iter(|| black_box(tile_spmv(&tiled, &xd)));
            });
            group.bench_with_input(BenchmarkId::new("cuSPARSE-BSR", sp), &sp, |b, _| {
                b.iter(|| black_box(bsr.bsrmv(&xd)));
            });
            group.bench_with_input(BenchmarkId::new("CombBLAS-bucket", sp), &sp, |b, _| {
                b.iter(|| black_box(bucket_spmspv(&csc, &x).unwrap()));
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
