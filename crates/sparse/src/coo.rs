//! Coordinate-list (triplet) sparse matrix.
//!
//! COO is the interchange format of the workspace: generators emit it,
//! MatrixMarket I/O reads into it, and the tiled builder in `tsv-core`
//! consumes it. It is also the format the paper uses for the *very sparse*
//! tiles extracted from the tiled structure (§3.2.1).

use crate::csc::CscMatrix;
use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::Result;

/// A sparse matrix stored as parallel `(row, col, val)` triplet arrays.
///
/// Duplicate coordinates are allowed until [`CooMatrix::sum_duplicates`] is
/// called; conversions to compressed formats sum duplicates implicitly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CooMatrix<T> {
    nrows: usize,
    ncols: usize,
    rows: Vec<u32>,
    cols: Vec<u32>,
    vals: Vec<T>,
}

impl<T: Copy> CooMatrix<T> {
    /// Creates an empty matrix of the given shape.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        Self {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Creates an empty matrix of the given shape with entry capacity.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        Self {
            nrows,
            ncols,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
        }
    }

    /// Builds a matrix from triplet arrays, validating bounds and lengths.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        rows: Vec<u32>,
        cols: Vec<u32>,
        vals: Vec<T>,
    ) -> Result<Self> {
        if rows.len() != cols.len() || rows.len() != vals.len() {
            return Err(SparseError::LengthMismatch {
                what: "rows/cols/vals of a COO matrix",
            });
        }
        for (&r, &c) in rows.iter().zip(&cols) {
            if r as usize >= nrows || c as usize >= ncols {
                return Err(SparseError::IndexOutOfBounds {
                    row: r as usize,
                    col: c as usize,
                    nrows,
                    ncols,
                });
            }
        }
        Ok(Self {
            nrows,
            ncols,
            rows,
            cols,
            vals,
        })
    }

    /// Appends one entry. Panics in debug builds if out of bounds; use
    /// [`CooMatrix::try_push`] for a checked insert.
    pub fn push(&mut self, row: usize, col: usize, val: T) {
        debug_assert!(row < self.nrows && col < self.ncols);
        self.rows.push(row as u32);
        self.cols.push(col as u32);
        self.vals.push(val);
    }

    /// Appends one entry, returning an error when out of bounds.
    pub fn try_push(&mut self, row: usize, col: usize, val: T) -> Result<()> {
        if row >= self.nrows || col >= self.ncols {
            return Err(SparseError::IndexOutOfBounds {
                row,
                col,
                nrows: self.nrows,
                ncols: self.ncols,
            });
        }
        self.push(row, col, val);
        Ok(())
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries (including any duplicates).
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Row indices of the stored entries.
    pub fn row_indices(&self) -> &[u32] {
        &self.rows
    }

    /// Column indices of the stored entries.
    pub fn col_indices(&self) -> &[u32] {
        &self.cols
    }

    /// Values of the stored entries.
    pub fn values(&self) -> &[T] {
        &self.vals
    }

    /// Iterates over `(row, col, value)` triplets.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, T)> + '_ {
        self.rows
            .iter()
            .zip(&self.cols)
            .zip(&self.vals)
            .map(|((&r, &c), &v)| (r as usize, c as usize, v))
    }

    /// Sorts entries into row-major order (row, then column). Stable with
    /// respect to duplicate coordinates.
    pub fn sort_row_major(&mut self) {
        let mut order: Vec<u32> = (0..self.nnz() as u32).collect();
        order.sort_by_key(|&i| (self.rows[i as usize], self.cols[i as usize]));
        self.permute(&order);
    }

    fn permute(&mut self, order: &[u32]) {
        let rows = order.iter().map(|&i| self.rows[i as usize]).collect();
        let cols = order.iter().map(|&i| self.cols[i as usize]).collect();
        let vals = order.iter().map(|&i| self.vals[i as usize]).collect();
        self.rows = rows;
        self.cols = cols;
        self.vals = vals;
    }

    /// Returns the transpose (entries re-labelled, shape swapped).
    pub fn transpose(&self) -> Self {
        Self {
            nrows: self.ncols,
            ncols: self.nrows,
            rows: self.cols.clone(),
            cols: self.rows.clone(),
            vals: self.vals.clone(),
        }
    }

    /// Converts to CSR, summing duplicate coordinates.
    pub fn to_csr(&self) -> CsrMatrix<T>
    where
        T: std::ops::Add<Output = T>,
    {
        CsrMatrix::from_coo(self)
    }

    /// Converts to CSC, summing duplicate coordinates.
    pub fn to_csc(&self) -> CscMatrix<T>
    where
        T: std::ops::Add<Output = T>,
    {
        CscMatrix::from_coo(self)
    }

    /// Converts to a dense row-major buffer (for tests and tiny matrices).
    pub fn to_dense(&self) -> Vec<T>
    where
        T: std::ops::Add<Output = T> + Default,
    {
        let mut dense = vec![T::default(); self.nrows * self.ncols];
        for (r, c, v) in self.iter() {
            let slot = &mut dense[r * self.ncols + c];
            *slot = *slot + v;
        }
        dense
    }
}

impl<T: Copy + std::ops::Add<Output = T>> CooMatrix<T> {
    /// Sorts row-major and sums entries sharing a coordinate.
    pub fn sum_duplicates(&mut self) {
        if self.nnz() == 0 {
            return;
        }
        self.sort_row_major();
        let mut out_r = Vec::with_capacity(self.nnz());
        let mut out_c = Vec::with_capacity(self.nnz());
        let mut out_v: Vec<T> = Vec::with_capacity(self.nnz());
        for i in 0..self.nnz() {
            let (r, c, v) = (self.rows[i], self.cols[i], self.vals[i]);
            if let (Some(&lr), Some(&lc)) = (out_r.last(), out_c.last()) {
                if lr == r && lc == c {
                    let last = out_v.last_mut().expect("values track indices");
                    *last = *last + v;
                    continue;
                }
            }
            out_r.push(r);
            out_c.push(c);
            out_v.push(v);
        }
        self.rows = out_r;
        self.cols = out_c;
        self.vals = out_v;
    }
}

impl CooMatrix<f64> {
    /// Drops explicitly stored zeros (useful after cancellation in
    /// `sum_duplicates`).
    pub fn drop_zeros(&mut self) {
        let keep: Vec<usize> = (0..self.nnz()).filter(|&i| self.vals[i] != 0.0).collect();
        if keep.len() == self.nnz() {
            return;
        }
        self.rows = keep.iter().map(|&i| self.rows[i]).collect();
        self.cols = keep.iter().map(|&i| self.cols[i]).collect();
        self.vals = keep.iter().map(|&i| self.vals[i]).collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CooMatrix<f64> {
        let mut m = CooMatrix::new(3, 4);
        m.push(0, 1, 2.0);
        m.push(2, 3, -1.0);
        m.push(1, 0, 4.0);
        m
    }

    #[test]
    fn construction_and_accessors() {
        let m = sample();
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 4);
        assert_eq!(m.nnz(), 3);
        let triplets: Vec<_> = m.iter().collect();
        assert_eq!(triplets[0], (0, 1, 2.0));
    }

    #[test]
    fn from_triplets_validates_bounds() {
        let err = CooMatrix::from_triplets(2, 2, vec![0, 5], vec![0, 0], vec![1.0, 1.0]);
        assert!(matches!(
            err,
            Err(SparseError::IndexOutOfBounds { row: 5, .. })
        ));
    }

    #[test]
    fn from_triplets_validates_lengths() {
        let err = CooMatrix::from_triplets(2, 2, vec![0], vec![0, 1], vec![1.0, 1.0]);
        assert!(matches!(err, Err(SparseError::LengthMismatch { .. })));
    }

    #[test]
    fn try_push_checks_bounds() {
        let mut m = CooMatrix::<f64>::new(2, 2);
        assert!(m.try_push(1, 1, 1.0).is_ok());
        assert!(m.try_push(2, 0, 1.0).is_err());
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn sort_row_major_orders_entries() {
        let mut m = sample();
        m.sort_row_major();
        let rows: Vec<_> = m.row_indices().to_vec();
        assert_eq!(rows, vec![0, 1, 2]);
    }

    #[test]
    fn sum_duplicates_merges_and_sorts() {
        let mut m = CooMatrix::new(2, 2);
        m.push(1, 1, 1.0);
        m.push(0, 0, 2.0);
        m.push(1, 1, 3.0);
        m.sum_duplicates();
        assert_eq!(m.nnz(), 2);
        let t: Vec<_> = m.iter().collect();
        assert_eq!(t, vec![(0, 0, 2.0), (1, 1, 4.0)]);
    }

    #[test]
    fn transpose_swaps_shape_and_coords() {
        let t = sample().transpose();
        assert_eq!(t.nrows(), 4);
        assert_eq!(t.ncols(), 3);
        assert!(t.iter().any(|e| e == (1, 0, 2.0)));
    }

    #[test]
    fn to_dense_sums_duplicates() {
        let mut m = CooMatrix::new(2, 2);
        m.push(0, 0, 1.5);
        m.push(0, 0, 0.5);
        let d = m.to_dense();
        assert_eq!(d, vec![2.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn drop_zeros_removes_cancelled_entries() {
        let mut m = CooMatrix::new(2, 2);
        m.push(0, 0, 1.0);
        m.push(0, 0, -1.0);
        m.push(1, 1, 3.0);
        m.sum_duplicates();
        m.drop_zeros();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.iter().next(), Some((1, 1, 3.0)));
    }

    #[test]
    fn empty_matrix_roundtrips() {
        let mut m = CooMatrix::<f64>::new(5, 5);
        m.sum_duplicates();
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.to_dense().len(), 25);
    }
}
