//! R-MAT (recursive matrix) power-law graph generator.
//!
//! Web crawls and social networks (`in-2004`, FB, TW, the Graph500 `KR`
//! matrices) have heavy-tailed degree distributions and scattered sparsity —
//! the hardest case for tiling and the regime where GSwitch/Gunrock's
//! work-list approaches are most competitive. R-MAT with the Graph500
//! parameters (a=0.57, b=0.19, c=0.19, d=0.05) reproduces that structure.

use crate::coo::CooMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the R-MAT recursion.
#[derive(Debug, Clone, Copy)]
pub struct RmatConfig {
    /// log2 of the number of vertices.
    pub scale: u32,
    /// Edges per vertex.
    pub edge_factor: usize,
    /// Quadrant probabilities; must sum to ~1.
    pub a: f64,
    /// Upper-right quadrant probability.
    pub b: f64,
    /// Lower-left quadrant probability.
    pub c: f64,
    /// Add the reverse of every edge.
    pub symmetric: bool,
}

impl Default for RmatConfig {
    /// Graph500 reference parameters.
    fn default() -> Self {
        Self {
            scale: 14,
            edge_factor: 16,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            symmetric: true,
        }
    }
}

impl RmatConfig {
    /// Convenience constructor with Graph500 probabilities.
    pub fn new(scale: u32, edge_factor: usize) -> Self {
        Self {
            scale,
            edge_factor,
            ..Default::default()
        }
    }

    fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }
}

/// Generates an R-MAT graph. Self-loops are dropped and duplicate edges
/// merged (values sum to the multiplicity, matching how SuiteSparse stores
/// multigraph collapses).
pub fn rmat(config: RmatConfig, seed: u64) -> CooMatrix<f64> {
    assert!(
        config.scale >= 1 && config.scale <= 30,
        "scale out of range"
    );
    assert!(config.a > 0.0 && config.b >= 0.0 && config.c >= 0.0 && config.d() >= 0.0);
    let n = 1usize << config.scale;
    let edges = n * config.edge_factor;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = CooMatrix::with_capacity(n, n, if config.symmetric { edges * 2 } else { edges });

    for _ in 0..edges {
        // Row and column ranges narrow in lockstep, so only the lower bound
        // of the column range needs tracking.
        let (mut r0, mut r1, mut c0) = (0usize, n, 0usize);
        while r1 - r0 > 1 {
            let h = (r1 - r0) / 2;
            let u: f64 = rng.random();
            // Add a little noise per level (standard R-MAT smoothing).
            let a = config.a * (0.95 + 0.1 * rng.random::<f64>());
            let b = config.b * (0.95 + 0.1 * rng.random::<f64>());
            let c = config.c * (0.95 + 0.1 * rng.random::<f64>());
            let total = a + b + c + config.d() * (0.95 + 0.1 * rng.random::<f64>());
            let u = u * total;
            if u < a {
                r1 -= h;
            } else if u < a + b {
                r1 -= h;
                c0 += h;
            } else if u < a + b + c {
                r0 += h;
            } else {
                r0 += h;
                c0 += h;
            }
        }
        let (r, c) = (r0, c0);
        if r == c {
            continue; // drop self-loops
        }
        m.push(r, c, 1.0);
        if config.symmetric {
            m.push(c, r, 1.0);
        }
    }
    m.sum_duplicates();
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_rough_edge_count() {
        let cfg = RmatConfig::new(10, 8);
        let m = rmat(cfg, 1);
        assert_eq!(m.nrows(), 1024);
        // Duplicates collapse, so realized nnz < 2 * edges but should stay
        // within a sane band.
        assert!(m.nnz() > 1024 * 4, "nnz {} unexpectedly small", m.nnz());
        assert!(m.nnz() <= 1024 * 16);
    }

    #[test]
    fn symmetric_config_gives_symmetric_pattern() {
        let m = rmat(RmatConfig::new(8, 4), 3).to_csr();
        let t = m.transpose();
        assert_eq!(m.row_ptr(), t.row_ptr());
        assert_eq!(m.col_idx(), t.col_idx());
    }

    #[test]
    fn degrees_are_skewed() {
        let m = rmat(RmatConfig::new(12, 16), 5).to_csr();
        let n = m.nrows();
        let mut degs: Vec<usize> = (0..n).map(|i| m.row_nnz(i)).collect();
        degs.sort_unstable();
        let max = *degs.last().unwrap();
        let median = degs[n / 2];
        assert!(
            max > median.max(1) * 8,
            "power-law skew missing: max {max} vs median {median}"
        );
    }

    #[test]
    fn no_self_loops() {
        let m = rmat(RmatConfig::new(8, 8), 7).to_csr();
        for i in 0..m.nrows() {
            assert!(m.get(i, i).is_none());
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = RmatConfig::new(9, 4);
        assert_eq!(rmat(cfg, 11), rmat(cfg, 11));
    }
}
